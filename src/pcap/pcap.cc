#include "pcap/pcap.h"

#include <array>
#include <cstring>

#include "http/url.h"
#include "util/hash.h"
#include "util/strings.h"

namespace adscope::pcap {

namespace {

constexpr std::uint32_t kPcapMagicLe = 0xA1B2C3D4;
constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
constexpr std::uint8_t kProtoTcp = 6;
constexpr std::size_t kEthLen = 14;
constexpr std::size_t kIpLen = 20;
constexpr std::size_t kTcpLen = 20;

constexpr std::uint8_t kSyn = 0x02;
constexpr std::uint8_t kSynAck = 0x12;
constexpr std::uint8_t kPshAck = 0x18;

void put_u16be(std::string& out, std::uint16_t value) {
  out.push_back(static_cast<char>(value >> 8));
  out.push_back(static_cast<char>(value & 0xFF));
}

void put_u32be(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value >> 24));
  out.push_back(static_cast<char>((value >> 16) & 0xFF));
  out.push_back(static_cast<char>((value >> 8) & 0xFF));
  out.push_back(static_cast<char>(value & 0xFF));
}

void put_u16le(std::string& out, std::uint16_t value) {
  out.push_back(static_cast<char>(value & 0xFF));
  out.push_back(static_cast<char>(value >> 8));
}

void put_u32le(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xFF));
  out.push_back(static_cast<char>((value >> 8) & 0xFF));
  out.push_back(static_cast<char>((value >> 16) & 0xFF));
  out.push_back(static_cast<char>(value >> 24));
}

/// RFC 1071 checksum over `data` with an initial partial sum.
std::uint16_t inet_checksum(std::string_view data, std::uint32_t sum = 0) {
  for (std::size_t i = 0; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(
        (static_cast<std::uint8_t>(data[i]) << 8) |
        static_cast<std::uint8_t>(data[i + 1]));
  }
  if (data.size() % 2 != 0) {
    sum += static_cast<std::uint32_t>(static_cast<std::uint8_t>(data.back())
                                      << 8);
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::uint16_t read_u16be(const char* p) {
  return static_cast<std::uint16_t>(
      (static_cast<std::uint8_t>(p[0]) << 8) | static_cast<std::uint8_t>(p[1]));
}

std::uint32_t read_u32be(const char* p) {
  return (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[3]));
}

std::uint32_t read_u32le(const char* p) {
  return static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[3])) << 24);
}

/// Deterministic ephemeral client port for a transaction.
std::uint16_t client_port(const trace::HttpTransaction& txn) {
  const auto h = util::hash_combine(util::fnv1a(txn.uri),
                                    util::fnv1a_u64(txn.timestamp_ms));
  return static_cast<std::uint16_t>(1024 + (h % 60000));
}

std::string http_request_text(const trace::HttpTransaction& txn) {
  std::string out = "GET " + (txn.uri.empty() ? "/" : txn.uri) +
                    " HTTP/1.1\r\nHost: " + txn.host + "\r\n";
  if (!txn.user_agent.empty()) {
    out += "User-Agent: " + txn.user_agent + "\r\n";
  }
  if (!txn.referer.empty()) out += "Referer: " + txn.referer + "\r\n";
  out += "Accept: */*\r\n\r\n";
  return out;
}

std::string http_response_text(const trace::HttpTransaction& txn) {
  std::string out =
      "HTTP/1.1 " + std::to_string(txn.status_code) +
      (txn.status_code >= 300 && txn.status_code < 400 ? " Found"
                                                       : " OK") +
      "\r\n";
  if (!txn.content_type.empty()) {
    out += "Content-Type: " + txn.content_type + "\r\n";
  }
  out += "Content-Length: " + std::to_string(txn.content_length) + "\r\n";
  if (!txn.location.empty()) out += "Location: " + txn.location + "\r\n";
  out += "Server: adscope-sim\r\n\r\n";
  out += txn.payload;  // usually empty: header-only capture
  return out;
}

}  // namespace

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

PcapWriter::PcapWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) throw std::runtime_error("cannot open pcap file: " + path);
  std::string header;
  put_u32le(header, kPcapMagicLe);
  put_u16le(header, 2);      // version major
  put_u16le(header, 4);      // version minor
  put_u32le(header, 0);      // thiszone
  put_u32le(header, 0);      // sigfigs
  put_u32le(header, 65535);  // snaplen
  put_u32le(header, 1);      // LINKTYPE_ETHERNET
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
}

PcapWriter::~PcapWriter() = default;

void PcapWriter::on_meta(const trace::TraceMeta& meta) {
  base_unix_us_ = meta.start_unix_s * 1'000'000ULL;
}

void PcapWriter::write_packet(std::uint64_t ts_us, netdb::IpV4 src,
                              netdb::IpV4 dst, std::uint16_t sport,
                              std::uint16_t dport, std::uint32_t seq,
                              std::uint32_t ack, std::uint8_t flags,
                              std::string_view payload) {
  // --- TCP header (checksum patched below) ---
  std::string tcp;
  put_u16be(tcp, sport);
  put_u16be(tcp, dport);
  put_u32be(tcp, seq);
  put_u32be(tcp, ack);
  tcp.push_back(static_cast<char>(5 << 4));  // data offset
  tcp.push_back(static_cast<char>(flags));
  put_u16be(tcp, 65535);  // window
  put_u16be(tcp, 0);      // checksum placeholder
  put_u16be(tcp, 0);      // urgent
  tcp.append(payload);

  // Pseudo-header for the TCP checksum.
  std::string pseudo;
  put_u32be(pseudo, src);
  put_u32be(pseudo, dst);
  pseudo.push_back(0);
  pseudo.push_back(static_cast<char>(kProtoTcp));
  put_u16be(pseudo, static_cast<std::uint16_t>(tcp.size()));
  pseudo += tcp;
  const auto tcp_checksum = inet_checksum(pseudo);
  tcp[16] = static_cast<char>(tcp_checksum >> 8);
  tcp[17] = static_cast<char>(tcp_checksum & 0xFF);

  // --- IPv4 header ---
  std::string ip;
  ip.push_back(0x45);
  ip.push_back(0);
  put_u16be(ip, static_cast<std::uint16_t>(kIpLen + tcp.size()));
  put_u16be(ip, static_cast<std::uint16_t>(packets_ & 0xFFFF));  // id
  put_u16be(ip, 0x4000);  // DF
  ip.push_back(64);       // TTL
  ip.push_back(static_cast<char>(kProtoTcp));
  put_u16be(ip, 0);  // checksum placeholder
  put_u32be(ip, src);
  put_u32be(ip, dst);
  const auto ip_checksum = inet_checksum(ip);
  ip[10] = static_cast<char>(ip_checksum >> 8);
  ip[11] = static_cast<char>(ip_checksum & 0xFF);

  // --- Ethernet ---
  std::string frame;
  frame.append("\x02\xAD\x5C\x0B\x00\x01", 6);  // dst (locally administered)
  frame.append("\x02\xAD\x5C\x0B\x00\x02", 6);  // src
  put_u16be(frame, kEtherTypeIpv4);
  frame += ip;
  frame += tcp;

  // --- pcap record header ---
  std::string record;
  const auto absolute = base_unix_us_ + ts_us;
  put_u32le(record, static_cast<std::uint32_t>(absolute / 1'000'000));
  put_u32le(record, static_cast<std::uint32_t>(absolute % 1'000'000));
  put_u32le(record, static_cast<std::uint32_t>(frame.size()));
  put_u32le(record, static_cast<std::uint32_t>(frame.size()));
  out_.write(record.data(), static_cast<std::streamsize>(record.size()));
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  ++packets_;
}

void PcapWriter::on_http(const trace::HttpTransaction& txn) {
  const auto sport = client_port(txn);
  const auto request_us = txn.timestamp_ms * 1000;
  // Lay the SYN exchange out before the request so the hand-shake
  // timings are recoverable: SYN at t-h, SYN-ACK at t-h+tcp.
  const std::uint64_t handshake_us =
      std::max<std::uint32_t>(txn.tcp_handshake_us, 1) + 50;
  const auto syn_us =
      request_us > handshake_us ? request_us - handshake_us : 0;
  const std::uint32_t seq = 1000;
  write_packet(syn_us, txn.client_ip, txn.server_ip, sport, txn.server_port,
               seq, 0, kSyn, {});
  write_packet(syn_us + txn.tcp_handshake_us, txn.server_ip, txn.client_ip,
               txn.server_port, sport, 5000, seq + 1, kSynAck, {});
  const auto request = http_request_text(txn);
  write_packet(request_us, txn.client_ip, txn.server_ip, sport,
               txn.server_port, seq + 1, 5001, kPshAck, request);
  write_packet(request_us + txn.http_handshake_us, txn.server_ip,
               txn.client_ip, txn.server_port, sport, 5001,
               seq + 1 + static_cast<std::uint32_t>(request.size()), kPshAck,
               http_response_text(txn));
}

void PcapWriter::on_tls(const trace::TlsFlow& flow) {
  const auto ts_us = flow.timestamp_ms * 1000;
  const auto sport = static_cast<std::uint16_t>(
      1024 + (util::fnv1a_u64(flow.timestamp_ms ^ flow.server_ip) % 60000));
  write_packet(ts_us, flow.client_ip, flow.server_ip, sport,
               flow.server_port, 1000, 0, kSyn, {});
  write_packet(ts_us + 15'000, flow.server_ip, flow.client_ip,
               flow.server_port, sport, 5000, 1001, kSynAck, {});
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

PcapHttpReader::PcapHttpReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_) throw std::runtime_error("cannot open pcap file: " + path);
  std::array<char, 24> header{};
  in_.read(header.data(), header.size());
  if (in_.gcount() != 24) throw PcapFormatError("truncated pcap header");
  const auto magic = read_u32le(header.data());
  if (magic != kPcapMagicLe) {
    throw PcapFormatError("unsupported pcap magic (need LE usec format)");
  }
  const auto linktype = read_u32le(header.data() + 20);
  if (linktype != 1) throw PcapFormatError("unsupported link type");
}

std::uint64_t PcapHttpReader::replay(trace::TraceSink& sink) {
  trace::TraceMeta meta;
  meta.name = "pcap-import";
  sink.on_meta(meta);

  std::uint64_t transactions = 0;
  std::array<char, 16> record_header{};
  std::string frame;
  while (in_.read(record_header.data(), record_header.size())) {
    const auto ts_sec = read_u32le(record_header.data());
    const auto ts_usec = read_u32le(record_header.data() + 4);
    const auto incl_len = read_u32le(record_header.data() + 8);
    if (incl_len > (1U << 20)) throw PcapFormatError("oversized packet");
    frame.resize(incl_len);
    in_.read(frame.data(), static_cast<std::streamsize>(incl_len));
    if (static_cast<std::uint32_t>(in_.gcount()) != incl_len) {
      throw PcapFormatError("truncated packet");
    }
    ++packets_;
    const std::uint64_t ts_us =
        static_cast<std::uint64_t>(ts_sec) * 1'000'000 + ts_usec;
    if (!base_set_) {
      base_us_ = ts_us;
      base_set_ = true;
      meta.start_unix_s = ts_sec;
    }

    // --- decode Ethernet / IPv4 / TCP ---
    if (frame.size() < kEthLen + kIpLen + kTcpLen ||
        read_u16be(frame.data() + 12) != kEtherTypeIpv4) {
      ++skipped_;
      continue;
    }
    const char* ip = frame.data() + kEthLen;
    const auto ihl = static_cast<std::size_t>(
                         static_cast<std::uint8_t>(ip[0]) & 0x0F) *
                     4;
    if ((static_cast<std::uint8_t>(ip[0]) >> 4) != 4 ||
        static_cast<std::uint8_t>(ip[9]) != kProtoTcp ||
        frame.size() < kEthLen + ihl + kTcpLen) {
      ++skipped_;
      continue;
    }
    const auto src = read_u32be(ip + 12);
    const auto dst = read_u32be(ip + 16);
    const char* tcp = ip + ihl;
    const auto sport = read_u16be(tcp);
    const auto dport = read_u16be(tcp + 2);
    const auto data_offset =
        static_cast<std::size_t>(static_cast<std::uint8_t>(tcp[12]) >> 4) * 4;
    const auto flags = static_cast<std::uint8_t>(tcp[13]);
    const char* data = tcp + data_offset;
    const auto header_bytes = static_cast<std::size_t>(data - frame.data());
    const std::string_view payload =
        frame.size() > header_bytes
            ? std::string_view(data, frame.size() - header_bytes)
            : std::string_view{};

    // Canonical (direction-free) flow key; the client side is learned
    // from the SYN (or, failing that, from who sends the request).
    const auto lo_ip = std::min(src, dst);
    const auto hi_ip = std::max(src, dst);
    const auto lo_port = std::min(sport, dport);
    const auto hi_port = std::max(sport, dport);
    const auto key = util::hash_combine(
        util::hash_combine(util::fnv1a_u64(lo_ip), util::fnv1a_u64(hi_ip)),
        util::fnv1a_u64((static_cast<std::uint64_t>(lo_port) << 16) |
                        hi_port));
    Flow& flow = flows_[key];

    if ((flags & kSyn) && !(flags & 0x10)) {  // SYN: sender is the client
      flow.syn_us = ts_us;
      flow.client_ip = src;
      flow.client_port = sport;
      flow.server_ip = dst;
      flow.server_port = dport;
      continue;
    }
    if ((flags & kSyn) && (flags & 0x10)) {  // SYN-ACK
      flow.synack_us = ts_us;
      if (flow.client_ip == 0) {  // no SYN observed
        flow.client_ip = dst;
        flow.client_port = dport;
        flow.server_ip = src;
        flow.server_port = sport;
      }
      if (flow.server_port == 443 && !flow.tls_reported) {
        trace::TlsFlow tls;
        tls.timestamp_ms =
            flow.syn_us >= base_us_ ? (flow.syn_us - base_us_) / 1000 : 0;
        tls.client_ip = flow.client_ip;
        tls.server_ip = flow.server_ip;
        tls.server_port = 443;
        sink.on_tls(tls);
        flow.tls_reported = true;
      }
      continue;
    }
    if (payload.empty()) continue;

    if (util::starts_with(payload, "GET ") ||
        util::starts_with(payload, "POST ") ||
        util::starts_with(payload, "HEAD ")) {
      if (flow.client_ip == 0) {  // mid-stream capture: requester = client
        flow.client_ip = src;
        flow.client_port = sport;
        flow.server_ip = dst;
        flow.server_port = dport;
      }
      flow.request_us = ts_us;
      flow.have_request = true;
      flow.txn = trace::HttpTransaction{};
      flow.txn.client_ip = flow.client_ip;
      flow.txn.server_ip = flow.server_ip;
      flow.txn.server_port = flow.server_port;
      flow.txn.timestamp_ms = (ts_us - base_us_) / 1000;
      // Request line + headers.
      const auto space = payload.find(' ');
      const auto space2 = payload.find(' ', space + 1);
      if (space2 != std::string_view::npos) {
        flow.txn.uri = std::string(payload.substr(space + 1,
                                                  space2 - space - 1));
      }
      for (const auto line : util::split(payload, '\n')) {
        const auto colon = line.find(':');
        if (colon == std::string_view::npos) continue;
        const auto name = util::trim(line.substr(0, colon));
        const auto value = std::string(util::trim(line.substr(colon + 1)));
        if (util::iequals(name, "Host")) flow.txn.host = value;
        else if (util::iequals(name, "Referer")) flow.txn.referer = value;
        else if (util::iequals(name, "User-Agent")) {
          flow.txn.user_agent = value;
        }
      }
      continue;
    }

    if (util::starts_with(payload, "HTTP/1.") && flow.have_request) {
      std::uint64_t status = 0;
      const auto space = payload.find(' ');
      if (space != std::string_view::npos) {
        util::parse_u64(payload.substr(space + 1, 3), status);
      }
      flow.txn.status_code = static_cast<std::uint16_t>(status);
      for (const auto line : util::split(payload, '\n')) {
        const auto colon = line.find(':');
        if (colon == std::string_view::npos) continue;
        const auto name = util::trim(line.substr(0, colon));
        const auto value = std::string(util::trim(line.substr(colon + 1)));
        if (util::iequals(name, "Content-Type")) {
          flow.txn.content_type = value;
        } else if (util::iequals(name, "Content-Length")) {
          util::parse_u64(value, flow.txn.content_length);
        } else if (util::iequals(name, "Location")) {
          flow.txn.location = value;
        }
      }
      if (flow.synack_us > flow.syn_us) {
        flow.txn.tcp_handshake_us =
            static_cast<std::uint32_t>(flow.synack_us - flow.syn_us);
      }
      if (ts_us > flow.request_us) {
        flow.txn.http_handshake_us =
            static_cast<std::uint32_t>(ts_us - flow.request_us);
      }
      sink.on_http(flow.txn);
      flow.have_request = false;
      ++transactions;
    }
  }
  return transactions;
}

}  // namespace adscope::pcap
