// Replay client — streams an on-disk .adst trace into a running
// adscoped daemon over TCP or a Unix socket.
//
// Time-ordered replay (the default) re-encodes the records with a
// fresh TraceEncoder (the wire stream carries its own dictionary) and
// sends them in batches. Pre-sorted replay (`time_order == false`) of a
// regular file takes the zero-copy path instead: the file is mmap'd and
// each record's raw wire bytes are sent verbatim — the on-disk
// dictionary interleaving is already valid in file order. With
// `speedup > 0` the send of each record is delayed until
//   wall_start + (record.timestamp_ms - trace_start) / speedup,
// so `--speedup 60` compresses an hour of trace into a minute and
// `--speedup 1` replays in real time; `speedup == 0` sends as fast as
// the daemon's backpressure allows.
#pragma once

#include <cstdint>
#include <string>

namespace adscope::live {

struct ReplayOptions {
  std::string trace_path;
  /// TCP target (used when `unix_path` is empty).
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Unix-socket target; takes precedence over host:port when set.
  std::string unix_path;
  /// Trace-time acceleration factor; 0 = no pacing (maximum rate).
  double speedup = 0.0;
  /// Flush threshold: send once the encode buffer exceeds this.
  std::size_t batch_bytes = 64 * 1024;
  /// Re-order the file into global timestamp order before sending.
  /// .adst files are written producer-major (simulator devices, pcap
  /// conversion), but a live vantage point observes traffic in time
  /// order — and the daemon's watermark sealing assumes it. Costs one
  /// in-memory copy of the trace; disable for pre-sorted input.
  bool time_order = true;
};

struct ReplayStats {
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  double wall_s = 0.0;
  /// True when the zero-copy path ran: the file was mmap'd and record
  /// spans were sent verbatim (no decode-to-records, no re-encode).
  /// Only possible with `time_order == false` on a regular file —
  /// reordering invalidates the inline dictionary definitions.
  bool zero_copy = false;
};

/// Streams the trace and sends the end-of-stream marker. Throws
/// std::runtime_error / std::system_error on unreadable traces or
/// connection failures (a daemon-side close mid-stream surfaces here).
ReplayStats replay_trace(const ReplayOptions& options);

}  // namespace adscope::live

namespace adscope::trace {
class MemoryTrace;
class TraceSink;
}  // namespace adscope::trace

namespace adscope::live {

/// Replays a buffered trace as one timestamp-ordered stream, merging
/// the (individually sorted) HTTP and TLS tracks. Exposed so offline
/// reference studies can consume records in exactly the order a
/// time-ordered replay delivers them. Returns records delivered
/// (meta included).
std::uint64_t replay_time_ordered(const trace::MemoryTrace& buffered,
                                  trace::TraceSink& sink);

/// Sorts both record tracks of `buffered` by timestamp in place.
void sort_by_time(trace::MemoryTrace& buffered);

}  // namespace adscope::live
