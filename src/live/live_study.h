// LiveStudy — sliding-window online version of the trace analysis.
//
// The batch pipelines (core::TraceStudy, core::ParallelTraceStudy) answer
// "what happened in this trace" after the fact; LiveStudy answers "what
// is happening now" while records are still arriving. It reuses the same
// machinery end to end:
//
//   ingest threads ──BoundedQueue──▶ shard workers (hash(client_ip))
//                                        │
//                            ring of time buckets, one complete
//                            TraceStudy per (shard, bucket)
//                                        │
//   snapshot() ◀── merge() of every *sealed* bucket, shard-merge laws
//                  from PR-1 make the result order-independent
//
// Bucket lifecycle: a record with timestamp t lands in bucket
// t / bucket_seconds. When the watermark (max timestamp seen) moves past
// a bucket, maintain() seals it — its TraceStudy is finish()ed and
// becomes immutable — and buckets older than the retention window are
// evicted, so memory stays bounded no matter how long the daemon runs.
// Records for sealed or evicted buckets are dropped and counted
// (late_drops) instead of corrupting finished aggregates.
//
// Identity invariant (tests/test_live_study.cpp): when no per-user
// activity spans a bucket boundary, the merged view over the surviving
// buckets is byte-identical to a serial TraceStudy over only the
// surviving records — eviction is exact subtraction, not an estimate.
// Cross-boundary activity degrades gracefully: the classifier's
// referrer/redirect context restarts per bucket, exactly as the PR-1
// shard caps do per shard.
//
// Thread safety: on_meta/on_http/on_tls may be called from any number of
// ingest threads; control operations (seal/evict) travel through the
// same queues as data, so they apply in order; snapshot() may run
// concurrently with ingest.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <variant>
#include <vector>

#include "core/study.h"
#include "core/study_snapshot.h"
#include "util/annotations.h"
#include "util/bounded_queue.h"
#include "util/thread_pool.h"

namespace adscope::live {

/// Owned merge of sealed buckets — unlike StudyView (which borrows from
/// a live study), a snapshot survives independently of further ingest,
/// so the HTTP handlers can render it without holding any lock. Now a
/// core type (core/study_snapshot.h) so the snapshot store can hold and
/// roll up snapshots without depending on the live layer.
using StudySnapshot = core::StudySnapshot;

struct LiveStudyOptions {
  /// Forwarded verbatim to every bucket's TraceStudy.
  core::StudyOptions study;
  /// Shard (= worker) count; 0 picks the hardware concurrency.
  std::size_t threads = 1;
  /// Records buffered per shard before ingest threads block.
  std::size_t queue_capacity = 4096;
  /// Width of one time bucket. Sliding windows are answered in whole
  /// buckets, so this is the window-resolution / memory trade-off.
  std::uint64_t bucket_seconds = 300;
  /// Buckets retained before eviction (default: 24 h at 5 min).
  std::uint64_t window_buckets = 288;
  /// Allowed lateness: maintain() keeps this many whole buckets below
  /// the watermark open, so records arriving up to seal_lag_buckets *
  /// bucket_seconds behind the newest one still land instead of being
  /// dropped as late. 0 = seal aggressively (strictly ordered input).
  std::uint64_t seal_lag_buckets = 1;
  /// Seal hook: invoked by the shard worker the moment a bucket's study
  /// is finish()ed and becomes immutable — the feed point for the
  /// snapshot store. Runs on the worker thread with the shard lock
  /// held: the callback may read the study and must not call back into
  /// the LiveStudy. The study reference is valid until the bucket is
  /// evicted; copy out (StudySnapshot::absorb) before returning.
  std::function<void(std::uint64_t bucket_id, std::size_t shard,
                     const core::TraceStudy& study)>
      on_seal;
};

class LiveStudy final : public trace::TraceSink {
 public:
  static constexpr std::uint64_t kAllBuckets = UINT64_MAX;

  /// Engine, registry (and pool, when given) must outlive the study.
  /// An external pool must have at least `threads` workers (the drain
  /// loops block; see ParallelTraceStudy).
  LiveStudy(const adblock::FilterEngine& engine,
            const netdb::AbpServerRegistry& registry,
            LiveStudyOptions options = {}, util::ThreadPool* pool = nullptr);
  ~LiveStudy() override;

  LiveStudy(const LiveStudy&) = delete;
  LiveStudy& operator=(const LiveStudy&) = delete;

  // TraceSink — safe from any thread. The first meta wins and fixes the
  // aggregate shapes; later metas are counted and ignored. Data records
  // arriving before any meta are dropped (the wire protocol makes this
  // structurally impossible: every stream starts with its meta block).
  void on_meta(const trace::TraceMeta& meta) override;
  void on_http(const trace::HttpTransaction& txn) override;
  void on_tls(const trace::TlsFlow& flow) override;

  /// Seal every bucket with id < `bucket`: their studies are finished
  /// and become immutable inputs for snapshot(). Applied in-queue-order
  /// by the shard workers (asynchronous — flush() to wait).
  void seal_before(std::uint64_t bucket);
  /// Seal everything, including the open bucket (end of stream).
  void seal_all() { seal_before(kAllBuckets); }
  /// Drop buckets with id < `bucket` (they stop contributing to
  /// snapshots and their memory is released). Implies a seal floor:
  /// later records for evicted buckets are late-dropped.
  void evict_before(std::uint64_t bucket);

  /// Watermark-driven housekeeping: seals buckets the watermark has
  /// passed and evicts those older than the retention window. The
  /// serving layer calls this periodically.
  void maintain();

  /// Blocks until every record and control op enqueued before this call
  /// was processed by its shard worker.
  void flush();

  /// Merge every sealed bucket with id in [min_bucket, max_bucket] into
  /// an owned snapshot. Runs concurrently with ingest.
  StudySnapshot snapshot(std::uint64_t min_bucket = 0,
                         std::uint64_t max_bucket = kAllBuckets) const;
  /// Snapshot of the trailing `window_s` seconds (whole buckets, ending
  /// at the current watermark bucket). window_s == 0 means everything.
  StudySnapshot snapshot_window(std::uint64_t window_s) const;

  /// Close the queues and join the workers. Records pushed afterwards
  /// are dropped (closed_drops). snapshot() remains valid. Idempotent.
  void close();

  // -- observability (all safe from any thread) -----------------------
  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::uint64_t bucket_seconds() const noexcept {
    return options_.bucket_seconds;
  }
  std::uint64_t window_buckets() const noexcept {
    return options_.window_buckets;
  }
  /// Highest record timestamp accepted so far (ms; 0 before any record).
  std::uint64_t watermark_ms() const noexcept {
    return watermark_ms_.load(std::memory_order_relaxed);
  }
  std::uint64_t current_bucket() const noexcept {
    return bucket_of_ms(watermark_ms());
  }
  std::uint64_t bucket_of_ms(std::uint64_t timestamp_ms) const noexcept {
    return timestamp_ms / 1000 / options_.bucket_seconds;
  }

  std::uint64_t records_ingested() const noexcept {
    return records_ingested_.load(std::memory_order_relaxed);
  }
  /// Records for already-sealed or evicted buckets.
  std::uint64_t late_drops() const noexcept {
    return late_drops_.load(std::memory_order_relaxed);
  }
  /// Data records before the first meta block.
  std::uint64_t pre_meta_drops() const noexcept {
    return pre_meta_drops_.load(std::memory_order_relaxed);
  }
  /// Records pushed after close().
  std::uint64_t closed_drops() const noexcept {
    return closed_drops_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_drops() const noexcept {
    return late_drops() + pre_meta_drops() + closed_drops();
  }
  std::uint64_t metas_ignored() const noexcept {
    return metas_ignored_.load(std::memory_order_relaxed);
  }
  std::uint64_t buckets_evicted() const noexcept {
    return buckets_evicted_.load(std::memory_order_relaxed);
  }
  /// (shard, bucket) studies sealed so far. Monotone; together with the
  /// eviction and ingest counters it fingerprints the serving state, so
  /// the HTTP layer derives ETags from it.
  std::uint64_t buckets_sealed() const noexcept {
    return buckets_sealed_.load(std::memory_order_relaxed);
  }
  /// Records currently queued across all shards.
  std::size_t queue_depth() const;
  /// Live (non-evicted) buckets across all shards.
  std::size_t bucket_count() const;
  /// Pipeline counters summed over every live bucket (classification-
  /// cache hit rates included). Takes each shard's mutex briefly.
  core::ClassifierCounters classifier_counters() const;

 private:
  struct Control {
    enum class Kind : std::uint8_t { kSealBefore, kEvictBefore };
    Kind kind = Kind::kSealBefore;
    std::uint64_t bucket = 0;
  };
  struct FlushBarrier {
    util::Mutex mutex;
    util::CondVar cv;
    std::size_t remaining ADSCOPE_GUARDED_BY(mutex) = 0;
  };
  using Record = std::variant<trace::HttpTransaction, trace::TlsFlow, Control,
                              std::shared_ptr<FlushBarrier>>;

  struct Bucket {
    Bucket(const adblock::FilterEngine& engine,
           const netdb::AbpServerRegistry& registry,
           const core::StudyOptions& options)
        : study(engine, registry, options) {}
    core::TraceStudy study;
    bool sealed = false;
  };

  struct Shard {
    Shard(std::size_t shard_index, std::size_t queue_capacity)
        : index(shard_index), queue(queue_capacity) {}
    const std::size_t index;
    util::BoundedQueue<Record> queue;
    std::future<void> done;
    mutable util::Mutex mutex;
    std::map<std::uint64_t, std::unique_ptr<Bucket>> buckets
        ADSCOPE_GUARDED_BY(mutex);
    // Bucket ids below the floor are sealed or evicted.
    std::uint64_t floor ADSCOPE_GUARDED_BY(mutex) = 0;
  };

  std::size_t shard_of(netdb::IpV4 client_ip) const noexcept;
  void worker_loop(Shard& shard);
  void process(Shard& shard, std::uint64_t timestamp_ms,
               const trace::HttpTransaction* txn, const trace::TlsFlow* flow);
  void apply_control(Shard& shard, const Control& control);
  void push_record(std::size_t shard, Record record);
  void note_watermark(std::uint64_t timestamp_ms);
  void broadcast(Record record);

  const adblock::FilterEngine& engine_;
  const netdb::AbpServerRegistry& registry_;
  LiveStudyOptions options_;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable util::Mutex meta_mutex_;
  trace::TraceMeta meta_ ADSCOPE_GUARDED_BY(meta_mutex_);
  std::atomic<bool> meta_set_{false};

  std::atomic<std::uint64_t> watermark_ms_{0};
  std::atomic<std::uint64_t> records_ingested_{0};
  std::atomic<std::uint64_t> late_drops_{0};
  std::atomic<std::uint64_t> pre_meta_drops_{0};
  std::atomic<std::uint64_t> closed_drops_{0};
  std::atomic<std::uint64_t> metas_ignored_{0};
  std::atomic<std::uint64_t> buckets_evicted_{0};
  std::atomic<std::uint64_t> buckets_sealed_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace adscope::live
