#include "live/http_endpoint.h"

#include <charconv>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "live/study_json.h"
#include "stats/json.h"
#include "util/simd.h"

namespace adscope::live {

namespace {

/// Parses "?window_s=N" from a request target. Returns 0 (= whole ring)
/// when absent; throws std::invalid_argument on malformed values so the
/// caller can answer 400 instead of silently serving the wrong window.
std::uint64_t parse_window_s(const std::string& target) {
  const auto query_at = target.find('?');
  if (query_at == std::string::npos) return 0;
  std::string_view query(target);
  query.remove_prefix(query_at + 1);
  while (!query.empty()) {
    const auto amp = query.find('&');
    const auto param = query.substr(0, amp);
    if (param.substr(0, 9) == "window_s=") {
      const auto value = param.substr(9);
      std::uint64_t parsed = 0;
      const auto [end, ec] =
          std::from_chars(value.data(), value.data() + value.size(), parsed);
      if (ec != std::errc{} || end != value.data() + value.size() ||
          parsed == 0) {
        throw std::invalid_argument("window_s must be a positive integer");
      }
      return parsed;
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return 0;
}

std::string path_of(const std::string& target) {
  const auto query_at = target.find('?');
  return query_at == std::string::npos ? target : target.substr(0, query_at);
}

std::string error_json(const std::string& message) {
  std::string body = "{\"error\":\"";
  stats::json_escape(body, message);
  body += "\"}";
  return body;
}

}  // namespace

HttpEndpoint::HttpEndpoint(LiveStudy& study, util::ListenSocket socket,
                           const netdb::AsnDatabase* asn_db,
                           const TraceStreamServer* ingest,
                           HttpEndpointOptions options)
    : study_(study),
      socket_(std::move(socket)),
      asn_db_(asn_db),
      ingest_(ingest),
      options_(options) {
  if (options_.poll_ms <= 0) options_.poll_ms = 100;
  if (options_.max_request_bytes < 64) options_.max_request_bytes = 64;
}

HttpEndpoint::~HttpEndpoint() { stop(); }

void HttpEndpoint::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  acceptor_ = std::thread([this] { accept_loop(); });
}

void HttpEndpoint::stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> handlers;
  {
    util::MutexLock lock(connections_mutex_);
    handlers.swap(connections_);
  }
  for (auto& thread : handlers) {
    if (thread.joinable()) thread.join();
  }
  running_.store(false);
  stopping_.store(false);
}

void HttpEndpoint::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    util::Fd client = socket_.accept(options_.poll_ms);
    if (!client.valid()) {
      if (connections_active_.load(std::memory_order_relaxed) == 0) {
        util::MutexLock lock(connections_mutex_);
        for (auto& thread : connections_) {
          if (thread.joinable()) thread.join();
        }
        connections_.clear();
      }
      continue;
    }
    if (connections_active_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      continue;  // Fd destructor closes the socket
    }
    connections_active_.fetch_add(1, std::memory_order_relaxed);
    util::MutexLock lock(connections_mutex_);
    connections_.emplace_back([this, fd = std::move(client)]() mutable {
      handle_connection(std::move(fd));
      connections_active_.fetch_sub(1, std::memory_order_relaxed);
    });
  }
}

void HttpEndpoint::handle_connection(util::Fd fd) {
  // Read until the header terminator; request bodies are not supported
  // (every route is a GET) so the headers are the whole request.
  std::string request;
  char chunk[2048];
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (request.find("\r\n\r\n") != std::string::npos) break;
    if (request.size() >= options_.max_request_bytes) break;
    if (!util::wait_readable(fd.get(), options_.poll_ms)) continue;
    std::size_t n = 0;
    try {
      n = util::recv_some(fd.get(), chunk, sizeof(chunk));
    } catch (const std::system_error&) {
      return;
    }
    if (n == 0) break;
    request.append(chunk, n);
  }

  // Request line: METHOD SP TARGET SP VERSION.
  const auto line_end = request.find("\r\n");
  const auto line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const auto sp1 = line.find(' ');
  const auto sp2 = sp1 == std::string::npos ? std::string::npos
                                            : line.find(' ', sp1 + 1);
  Response response;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    requests_bad_.fetch_add(1, std::memory_order_relaxed);
    response = Response{400, "application/json", error_json("bad request")};
  } else {
    response = handle(line.substr(0, sp1), line.substr(sp1 + 1, sp2 - sp1 - 1));
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    if (response.status >= 400) {
      requests_bad_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::ostringstream out;
  out << "HTTP/1.1 " << status_line(response.status) << "\r\n"
      << "Content-Type: " << response.content_type << "\r\n"
      << "Content-Length: " << response.body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << response.body;
  util::send_all(fd.get(), out.str());
}

std::string HttpEndpoint::status_line(int status) {
  switch (status) {
    case 200:
      return "200 OK";
    case 400:
      return "400 Bad Request";
    case 404:
      return "404 Not Found";
    case 405:
      return "405 Method Not Allowed";
    default:
      return std::to_string(status) + " Error";
  }
}

HttpEndpoint::Response HttpEndpoint::handle(const std::string& method,
                                            const std::string& target) const {
  if (method != "GET") {
    return {405, "application/json", error_json("only GET is supported")};
  }
  const auto path = path_of(target);
  if (path == "/healthz") return {200, "text/plain", "ok\n"};
  if (path == "/metrics") {
    return {200, "text/plain; version=0.0.4", render_metrics()};
  }

  if (path.rfind("/study/", 0) == 0) {
    std::uint64_t window_s = 0;
    try {
      window_s = parse_window_s(target);
    } catch (const std::invalid_argument& error) {
      return {400, "application/json", error_json(error.what())};
    }
    const auto snapshot = window_s == 0 ? study_.snapshot()
                                        : study_.snapshot_window(window_s);
    if (path == "/study/summary") {
      return {200, "application/json", summary_json(snapshot)};
    }
    if (path == "/study/traffic") {
      return {200, "application/json", traffic_json(snapshot)};
    }
    if (path == "/study/users") {
      return {200, "application/json", users_json(snapshot)};
    }
    if (path == "/study/infra") {
      return {200, "application/json",
              infra_json(snapshot, asn_db_, options_.top_ases)};
    }
  }
  return {404, "application/json", error_json("no such route")};
}

std::string HttpEndpoint::render_metrics() const {
  std::ostringstream out;
  const auto ingested = study_.records_ingested();

  // Ingest rate: records since the previous scrape over the wall time
  // between scrapes (a gauge; Prometheus' own rate() over the counter
  // is the robust version, this one is for `curl | grep`).
  double rate = 0.0;
  {
    util::MutexLock lock(rate_mutex_);
    const auto now = std::chrono::steady_clock::now();
    if (scraped_before_) {
      const std::chrono::duration<double> dt = now - last_scrape_time_;
      if (dt.count() > 0 && ingested >= last_scrape_records_) {
        rate = static_cast<double>(ingested - last_scrape_records_) /
               dt.count();
      }
    }
    last_scrape_records_ = ingested;
    last_scrape_time_ = now;
    scraped_before_ = true;
  }

  out << "# HELP adscoped_records_ingested_total Records accepted into "
         "shard queues.\n"
      << "# TYPE adscoped_records_ingested_total counter\n"
      << "adscoped_records_ingested_total " << ingested << "\n";
  out << "# HELP adscoped_records_dropped_total Records dropped before "
         "aggregation, by reason.\n"
      << "# TYPE adscoped_records_dropped_total counter\n"
      << "adscoped_records_dropped_total{reason=\"late\"} "
      << study_.late_drops() << "\n"
      << "adscoped_records_dropped_total{reason=\"pre_meta\"} "
      << study_.pre_meta_drops() << "\n"
      << "adscoped_records_dropped_total{reason=\"closed\"} "
      << study_.closed_drops() << "\n";
  out << "# HELP adscoped_ingest_rate_records_per_second Records ingested "
         "per second since the previous scrape.\n"
      << "# TYPE adscoped_ingest_rate_records_per_second gauge\n"
      << "adscoped_ingest_rate_records_per_second " << rate << "\n";
  // Ingest always decodes off sockets (StreamDecoder); the mmap
  // surface exists only for on-disk traces. An info-style gauge so
  // dashboards can tell the surfaces apart uniformly.
  out << "# HELP adscoped_ingest_io Active trace decode surface "
         "(constant 1 for the mode in use).\n"
      << "# TYPE adscoped_ingest_io gauge\n"
      << "adscoped_ingest_io{mode=\"stream\"} 1\n";
  // Same info-gauge idiom for the active SIMD dispatch level, so a
  // fleet dashboard can spot a daemon silently running scalar kernels.
  out << "# HELP adscoped_simd Active SIMD kernel dispatch level "
         "(constant 1 for the level in use).\n"
      << "# TYPE adscoped_simd gauge\n"
      << "adscoped_simd{level=\"" << util::simd::to_string(
             util::simd::active_level()) << "\"} 1\n";
  out << "# HELP adscoped_queue_depth Records waiting in shard queues.\n"
      << "# TYPE adscoped_queue_depth gauge\n"
      << "adscoped_queue_depth " << study_.queue_depth() << "\n";
  out << "# HELP adscoped_buckets Live aggregation buckets held in "
         "memory.\n"
      << "# TYPE adscoped_buckets gauge\n"
      << "adscoped_buckets " << study_.bucket_count() << "\n";
  out << "# HELP adscoped_buckets_evicted_total Buckets evicted by the "
         "sliding window.\n"
      << "# TYPE adscoped_buckets_evicted_total counter\n"
      << "adscoped_buckets_evicted_total " << study_.buckets_evicted() << "\n";
  out << "# HELP adscoped_metas_ignored_total Trace meta blocks ignored "
         "after the first.\n"
      << "# TYPE adscoped_metas_ignored_total counter\n"
      << "adscoped_metas_ignored_total " << study_.metas_ignored() << "\n";
  out << "# HELP adscoped_watermark_ms Highest record timestamp seen "
         "(trace clock).\n"
      << "# TYPE adscoped_watermark_ms gauge\n"
      << "adscoped_watermark_ms " << study_.watermark_ms() << "\n";
  {
    const auto classifier = study_.classifier_counters();
    out << "# HELP adscoped_classify_cache_hits_total Classification "
           "verdicts served from the per-shard memo.\n"
        << "# TYPE adscoped_classify_cache_hits_total counter\n"
        << "adscoped_classify_cache_hits_total "
        << classifier.classify_cache_hits << "\n";
    out << "# HELP adscoped_classify_cache_misses_total Classifications "
           "computed by the filter engine.\n"
        << "# TYPE adscoped_classify_cache_misses_total counter\n"
        << "adscoped_classify_cache_misses_total "
        << classifier.classify_cache_misses << "\n";
  }

  if (ingest_ != nullptr) {
    out << "# HELP adscoped_stream_connections_total Ingest connections "
           "accepted.\n"
        << "# TYPE adscoped_stream_connections_total counter\n"
        << "adscoped_stream_connections_total "
        << ingest_->connections_total() << "\n";
    out << "# HELP adscoped_stream_connections_active Ingest connections "
           "currently open.\n"
        << "# TYPE adscoped_stream_connections_active gauge\n"
        << "adscoped_stream_connections_active "
        << ingest_->connections_active() << "\n";
    out << "# HELP adscoped_stream_connections_rejected_total Ingest "
           "connections refused over the cap.\n"
        << "# TYPE adscoped_stream_connections_rejected_total counter\n"
        << "adscoped_stream_connections_rejected_total "
        << ingest_->connections_rejected() << "\n";
    out << "# HELP adscoped_stream_bytes_received_total Raw bytes read "
           "from ingest sockets.\n"
        << "# TYPE adscoped_stream_bytes_received_total counter\n"
        << "adscoped_stream_bytes_received_total "
        << ingest_->bytes_received() << "\n";
    out << "# HELP adscoped_stream_decode_errors_total Connections "
           "dropped on malformed input.\n"
        << "# TYPE adscoped_stream_decode_errors_total counter\n"
        << "adscoped_stream_decode_errors_total " << ingest_->decode_errors()
        << "\n";
    out << "# HELP adscoped_streams_completed_total Streams that sent a "
           "clean end marker.\n"
        << "# TYPE adscoped_streams_completed_total counter\n"
        << "adscoped_streams_completed_total " << ingest_->streams_completed()
        << "\n";
  }

  out << "# HELP adscoped_http_requests_total HTTP requests answered.\n"
      << "# TYPE adscoped_http_requests_total counter\n"
      << "adscoped_http_requests_total "
      << requests_served_.load(std::memory_order_relaxed) << "\n";
  out << "# HELP adscoped_http_requests_bad_total HTTP requests answered "
         "with a 4xx/5xx status.\n"
      << "# TYPE adscoped_http_requests_bad_total counter\n"
      << "adscoped_http_requests_bad_total "
      << requests_bad_.load(std::memory_order_relaxed) << "\n";
  return out.str();
}

}  // namespace adscope::live
