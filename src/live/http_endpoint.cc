#include "live/http_endpoint.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <string_view>
#include <utility>

#include "live/study_json.h"
#include "util/simd.h"

namespace adscope::live {

namespace {

std::string path_of(const std::string& target) {
  const auto query_at = target.find('?');
  return query_at == std::string::npos ? target : target.substr(0, query_at);
}

std::string_view query_of(const std::string& target) {
  const auto query_at = target.find('?');
  if (query_at == std::string::npos) return {};
  return std::string_view(target).substr(query_at + 1);
}

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

/// Value of the first `name` header in a CRLF-separated header block
/// (case-insensitive name match); empty when absent.
std::string_view header_value(std::string_view headers, std::string_view name) {
  std::size_t at = 0;
  while (at < headers.size()) {
    auto line_end = headers.find("\r\n", at);
    if (line_end == std::string_view::npos) line_end = headers.size();
    const auto line = headers.substr(at, line_end - at);
    const auto colon = line.find(':');
    if (colon != std::string_view::npos &&
        iequals(trim(line.substr(0, colon)), name)) {
      return trim(line.substr(colon + 1));
    }
    at = line_end + 2;
  }
  return {};
}

store::QueryError make_error(int status, std::string message,
                             std::string param = "") {
  return {status, std::move(message), std::move(param)};
}

HttpEndpoint::Response error_response(int status, std::string message,
                                      std::string param = "") {
  return {status, "application/json",
          store::error_json(make_error(status, std::move(message),
                                       std::move(param))),
          ""};
}

}  // namespace

HttpEndpoint::HttpEndpoint(LiveStudy& study, util::ListenSocket socket,
                           const netdb::AsnDatabase* asn_db,
                           const TraceStreamServer* ingest,
                           store::StoreService* store,
                           HttpEndpointOptions options)
    : study_(study),
      socket_(std::move(socket)),
      asn_db_(asn_db),
      ingest_(ingest),
      store_(store),
      options_(options) {
  if (options_.poll_ms <= 0) options_.poll_ms = 100;
  if (options_.max_request_bytes < 64) options_.max_request_bytes = 64;
  if (options_.idle_timeout_ms <= 0) options_.idle_timeout_ms = 5000;
  if (options_.max_requests_per_connection == 0) {
    options_.max_requests_per_connection = 1;
  }
}

HttpEndpoint::~HttpEndpoint() { stop(); }

void HttpEndpoint::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  acceptor_ = std::thread([this] { accept_loop(); });
}

void HttpEndpoint::stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> handlers;
  {
    util::MutexLock lock(connections_mutex_);
    handlers.swap(connections_);
  }
  for (auto& thread : handlers) {
    if (thread.joinable()) thread.join();
  }
  running_.store(false);
  stopping_.store(false);
}

void HttpEndpoint::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    util::Fd client = socket_.accept(options_.poll_ms);
    if (!client.valid()) {
      if (connections_active_.load(std::memory_order_relaxed) == 0) {
        util::MutexLock lock(connections_mutex_);
        for (auto& thread : connections_) {
          if (thread.joinable()) thread.join();
        }
        connections_.clear();
      }
      continue;
    }
    if (connections_active_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      continue;  // Fd destructor closes the socket
    }
    connections_active_.fetch_add(1, std::memory_order_relaxed);
    util::MutexLock lock(connections_mutex_);
    connections_.emplace_back([this, fd = std::move(client)]() mutable {
      handle_connection(std::move(fd));
      connections_active_.fetch_sub(1, std::memory_order_relaxed);
    });
  }
}

void HttpEndpoint::handle_connection(util::Fd fd) {
  // Keep-alive loop: requests are headers-only GETs, so one request =
  // one "\r\n\r\n"-terminated block. Bytes past the terminator stay in
  // the buffer for the next (pipelined) request.
  std::string buffer;
  char chunk[2048];
  std::size_t served = 0;
  auto last_activity = std::chrono::steady_clock::now();
  const auto idle_limit = std::chrono::milliseconds(options_.idle_timeout_ms);

  while (!stopping_.load(std::memory_order_relaxed)) {
    const auto header_end = buffer.find("\r\n\r\n");
    if (header_end == std::string::npos) {
      if (buffer.size() >= options_.max_request_bytes) {
        requests_bad_.fetch_add(1, std::memory_order_relaxed);
        const auto response =
            error_response(400, "request headers too large");
        std::ostringstream out;
        out << "HTTP/1.1 " << status_line(response.status) << "\r\n"
            << "Content-Type: " << response.content_type << "\r\n"
            << "Content-Length: " << response.body.size() << "\r\n"
            << "Connection: close\r\n\r\n"
            << response.body;
        util::send_all(fd.get(), out.str());
        return;
      }
      if (std::chrono::steady_clock::now() - last_activity >= idle_limit) {
        return;
      }
      if (!util::wait_readable(fd.get(), options_.poll_ms)) continue;
      std::size_t n = 0;
      try {
        n = util::recv_some(fd.get(), chunk, sizeof(chunk));
      } catch (const std::system_error&) {
        return;
      }
      if (n == 0) return;  // peer closed
      buffer.append(chunk, n);
      last_activity = std::chrono::steady_clock::now();
      continue;
    }

    const std::string request = buffer.substr(0, header_end);
    buffer.erase(0, header_end + 4);

    // Request line: METHOD SP TARGET SP VERSION.
    const auto line_end = request.find("\r\n");
    const auto line =
        line_end == std::string::npos ? request : request.substr(0, line_end);
    const auto headers =
        line_end == std::string::npos
            ? std::string_view{}
            : std::string_view(request).substr(line_end + 2);
    const auto sp1 = line.find(' ');
    const auto sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);

    Response response;
    bool keep_alive = false;
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      requests_bad_.fetch_add(1, std::memory_order_relaxed);
      response = error_response(400, "malformed request line");
    } else {
      const auto version = trim(std::string_view(line).substr(sp2 + 1));
      const auto connection = header_value(headers, "connection");
      // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
      if (version == "HTTP/1.0") {
        keep_alive = iequals(connection, "keep-alive");
      } else {
        keep_alive = !iequals(connection, "close");
      }
      const auto if_none_match = header_value(headers, "if-none-match");
      response = handle(line.substr(0, sp1),
                        line.substr(sp1 + 1, sp2 - sp1 - 1),
                        std::string(if_none_match));
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      if (response.status >= 400) {
        requests_bad_.fetch_add(1, std::memory_order_relaxed);
      }
      if (response.status == 304) {
        responses_not_modified_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (++served >= options_.max_requests_per_connection) keep_alive = false;

    std::ostringstream out;
    out << "HTTP/1.1 " << status_line(response.status) << "\r\n"
        << "Content-Type: " << response.content_type << "\r\n"
        << "Content-Length: " << response.body.size() << "\r\n";
    if (!response.etag.empty()) out << "ETag: " << response.etag << "\r\n";
    out << "Connection: " << (keep_alive ? "keep-alive" : "close")
        << "\r\n\r\n"
        << response.body;
    try {
      util::send_all(fd.get(), out.str());
    } catch (const std::system_error&) {
      return;
    }
    if (!keep_alive) return;
    last_activity = std::chrono::steady_clock::now();
  }
}

std::string HttpEndpoint::status_line(int status) {
  switch (status) {
    case 200:
      return "200 OK";
    case 304:
      return "304 Not Modified";
    case 400:
      return "400 Bad Request";
    case 404:
      return "404 Not Found";
    case 405:
      return "405 Method Not Allowed";
    default:
      return std::to_string(status) + " Error";
  }
}

std::string HttpEndpoint::live_etag() const {
  std::string tag = "\"live-s";
  tag += std::to_string(study_.buckets_sealed());
  tag += "-e";
  tag += std::to_string(study_.buckets_evicted());
  tag += "-w";
  tag += std::to_string(study_.watermark_ms());
  tag += "-i";
  tag += std::to_string(study_.records_ingested());
  tag += "-d";
  tag += std::to_string(study_.total_drops());
  tag += '"';
  return tag;
}

HttpEndpoint::Response HttpEndpoint::handle_study(
    const std::string& target) const {
  store::QueryParams params;
  store::QueryError error;
  if (!store::parse_params(query_of(target), params, error)) {
    return {error.status, "application/json", store::error_json(error), ""};
  }
  const auto path = path_of(target);
  const auto etag = live_etag();
  const auto snapshot = params.window_s == 0
                            ? study_.snapshot()
                            : study_.snapshot_window(params.window_s);
  if (path == "/study/summary") {
    return {200, "application/json", summary_json(snapshot), etag};
  }
  if (path == "/study/traffic") {
    return {200, "application/json", traffic_json(snapshot), etag};
  }
  if (path == "/study/users") {
    return {200, "application/json", users_json(snapshot), etag};
  }
  if (path == "/study/infra") {
    return {200, "application/json",
            infra_json(snapshot, asn_db_, options_.top_ases), etag};
  }
  return error_response(404, "no such route");
}

HttpEndpoint::Response HttpEndpoint::handle(
    const std::string& method, const std::string& target,
    const std::string& if_none_match) const {
  if (method != "GET") {
    return error_response(405, "only GET is supported");
  }
  const auto path = path_of(target);

  Response response;
  if (path == "/healthz") {
    response = {200, "text/plain", "ok\n", ""};
  } else if (path == "/metrics") {
    response = {200, "text/plain; version=0.0.4", render_metrics(), ""};
  } else if (path.rfind("/study/", 0) == 0) {
    response = handle_study(target);
  } else if (path == "/query" || path.rfind("/query/", 0) == 0) {
    if (store_ == nullptr) {
      response = error_response(404, "snapshot store disabled");
    } else {
      const auto store_response = store_->query(target);
      response = {store_response.status, store_response.content_type,
                  store_response.body, store_response.etag};
    }
  } else {
    response = error_response(404, "no such route");
  }

  if (response.status == 200 && !response.etag.empty() &&
      !if_none_match.empty() &&
      (if_none_match == response.etag || if_none_match == "*")) {
    return {304, response.content_type, "", response.etag};
  }
  return response;
}

std::string HttpEndpoint::render_metrics() const {
  std::ostringstream out;
  const auto ingested = study_.records_ingested();

  // Ingest rate: records since the previous scrape over the wall time
  // between scrapes (a gauge; Prometheus' own rate() over the counter
  // is the robust version, this one is for `curl | grep`).
  double rate = 0.0;
  {
    util::MutexLock lock(rate_mutex_);
    const auto now = std::chrono::steady_clock::now();
    if (scraped_before_) {
      const std::chrono::duration<double> dt = now - last_scrape_time_;
      if (dt.count() > 0 && ingested >= last_scrape_records_) {
        rate = static_cast<double>(ingested - last_scrape_records_) /
               dt.count();
      }
    }
    last_scrape_records_ = ingested;
    last_scrape_time_ = now;
    scraped_before_ = true;
  }

  out << "# HELP adscoped_records_ingested_total Records accepted into "
         "shard queues.\n"
      << "# TYPE adscoped_records_ingested_total counter\n"
      << "adscoped_records_ingested_total " << ingested << "\n";
  out << "# HELP adscoped_records_dropped_total Records dropped before "
         "aggregation, by reason.\n"
      << "# TYPE adscoped_records_dropped_total counter\n"
      << "adscoped_records_dropped_total{reason=\"late\"} "
      << study_.late_drops() << "\n"
      << "adscoped_records_dropped_total{reason=\"pre_meta\"} "
      << study_.pre_meta_drops() << "\n"
      << "adscoped_records_dropped_total{reason=\"closed\"} "
      << study_.closed_drops() << "\n";
  out << "# HELP adscoped_ingest_rate_records_per_second Records ingested "
         "per second since the previous scrape.\n"
      << "# TYPE adscoped_ingest_rate_records_per_second gauge\n"
      << "adscoped_ingest_rate_records_per_second " << rate << "\n";
  // Ingest always decodes off sockets (StreamDecoder); the mmap
  // surface exists only for on-disk traces. An info-style gauge so
  // dashboards can tell the surfaces apart uniformly.
  out << "# HELP adscoped_ingest_io Active trace decode surface "
         "(constant 1 for the mode in use).\n"
      << "# TYPE adscoped_ingest_io gauge\n"
      << "adscoped_ingest_io{mode=\"stream\"} 1\n";
  // Same info-gauge idiom for the active SIMD dispatch level, so a
  // fleet dashboard can spot a daemon silently running scalar kernels.
  out << "# HELP adscoped_simd Active SIMD kernel dispatch level "
         "(constant 1 for the level in use).\n"
      << "# TYPE adscoped_simd gauge\n"
      << "adscoped_simd{level=\"" << util::simd::to_string(
             util::simd::active_level()) << "\"} 1\n";
  out << "# HELP adscoped_queue_depth Records waiting in shard queues.\n"
      << "# TYPE adscoped_queue_depth gauge\n"
      << "adscoped_queue_depth " << study_.queue_depth() << "\n";
  out << "# HELP adscoped_buckets Live aggregation buckets held in "
         "memory.\n"
      << "# TYPE adscoped_buckets gauge\n"
      << "adscoped_buckets " << study_.bucket_count() << "\n";
  out << "# HELP adscoped_buckets_evicted_total Buckets evicted by the "
         "sliding window.\n"
      << "# TYPE adscoped_buckets_evicted_total counter\n"
      << "adscoped_buckets_evicted_total " << study_.buckets_evicted() << "\n";
  out << "# HELP adscoped_buckets_sealed_total (shard, bucket) studies "
         "sealed so far.\n"
      << "# TYPE adscoped_buckets_sealed_total counter\n"
      << "adscoped_buckets_sealed_total " << study_.buckets_sealed() << "\n";
  out << "# HELP adscoped_metas_ignored_total Trace meta blocks ignored "
         "after the first.\n"
      << "# TYPE adscoped_metas_ignored_total counter\n"
      << "adscoped_metas_ignored_total " << study_.metas_ignored() << "\n";
  out << "# HELP adscoped_watermark_ms Highest record timestamp seen "
         "(trace clock).\n"
      << "# TYPE adscoped_watermark_ms gauge\n"
      << "adscoped_watermark_ms " << study_.watermark_ms() << "\n";
  {
    const auto classifier = study_.classifier_counters();
    out << "# HELP adscoped_classify_cache_hits_total Classification "
           "verdicts served from the per-shard memo.\n"
        << "# TYPE adscoped_classify_cache_hits_total counter\n"
        << "adscoped_classify_cache_hits_total "
        << classifier.classify_cache_hits << "\n";
    out << "# HELP adscoped_classify_cache_misses_total Classifications "
           "computed by the filter engine.\n"
        << "# TYPE adscoped_classify_cache_misses_total counter\n"
        << "adscoped_classify_cache_misses_total "
        << classifier.classify_cache_misses << "\n";
  }

  if (store_ != nullptr) {
    const auto& tree = store_->tree();
    out << "# HELP adscoped_store_epoch Snapshot-store mutation epoch "
           "(bumps on ingest and eviction).\n"
        << "# TYPE adscoped_store_epoch gauge\n"
        << "adscoped_store_epoch " << tree.epoch() << "\n";
    out << "# HELP adscoped_store_buckets Time buckets retained in the "
           "snapshot store.\n"
        << "# TYPE adscoped_store_buckets gauge\n"
        << "adscoped_store_buckets " << tree.bucket_count() << "\n";
    out << "# HELP adscoped_store_leaves (bucket, shard) snapshot leaves "
           "retained.\n"
        << "# TYPE adscoped_store_leaves gauge\n"
        << "adscoped_store_leaves " << tree.leaf_count() << "\n";
    out << "# HELP adscoped_store_leaves_ingested_total Sealed studies "
           "ingested into the store.\n"
        << "# TYPE adscoped_store_leaves_ingested_total counter\n"
        << "adscoped_store_leaves_ingested_total " << tree.leaves_ingested()
        << "\n";
    out << "# HELP adscoped_store_buckets_evicted_total Store buckets "
           "evicted by retention.\n"
        << "# TYPE adscoped_store_buckets_evicted_total counter\n"
        << "adscoped_store_buckets_evicted_total " << tree.buckets_evicted()
        << "\n";
    const auto cache = store_->cache_counters();
    out << "# HELP adscoped_store_cache_hits_total Query responses served "
           "from the response cache.\n"
        << "# TYPE adscoped_store_cache_hits_total counter\n"
        << "adscoped_store_cache_hits_total " << cache.hits << "\n";
    out << "# HELP adscoped_store_cache_misses_total Query responses "
           "rendered on demand.\n"
        << "# TYPE adscoped_store_cache_misses_total counter\n"
        << "adscoped_store_cache_misses_total " << cache.misses << "\n";
    out << "# HELP adscoped_store_cache_evictions_total Cached responses "
           "evicted by the LRU byte budget.\n"
        << "# TYPE adscoped_store_cache_evictions_total counter\n"
        << "adscoped_store_cache_evictions_total " << cache.evictions << "\n";
    out << "# HELP adscoped_store_cache_entries Responses currently "
           "cached.\n"
        << "# TYPE adscoped_store_cache_entries gauge\n"
        << "adscoped_store_cache_entries " << cache.entries << "\n";
    out << "# HELP adscoped_store_cache_bytes Bytes held by the response "
           "cache.\n"
        << "# TYPE adscoped_store_cache_bytes gauge\n"
        << "adscoped_store_cache_bytes " << cache.bytes << "\n";
  }

  if (ingest_ != nullptr) {
    out << "# HELP adscoped_stream_connections_total Ingest connections "
           "accepted.\n"
        << "# TYPE adscoped_stream_connections_total counter\n"
        << "adscoped_stream_connections_total "
        << ingest_->connections_total() << "\n";
    out << "# HELP adscoped_stream_connections_active Ingest connections "
           "currently open.\n"
        << "# TYPE adscoped_stream_connections_active gauge\n"
        << "adscoped_stream_connections_active "
        << ingest_->connections_active() << "\n";
    out << "# HELP adscoped_stream_connections_rejected_total Ingest "
           "connections refused over the cap.\n"
        << "# TYPE adscoped_stream_connections_rejected_total counter\n"
        << "adscoped_stream_connections_rejected_total "
        << ingest_->connections_rejected() << "\n";
    out << "# HELP adscoped_stream_bytes_received_total Raw bytes read "
           "from ingest sockets.\n"
        << "# TYPE adscoped_stream_bytes_received_total counter\n"
        << "adscoped_stream_bytes_received_total "
        << ingest_->bytes_received() << "\n";
    out << "# HELP adscoped_stream_decode_errors_total Connections "
           "dropped on malformed input.\n"
        << "# TYPE adscoped_stream_decode_errors_total counter\n"
        << "adscoped_stream_decode_errors_total " << ingest_->decode_errors()
        << "\n";
    out << "# HELP adscoped_streams_completed_total Streams that sent a "
           "clean end marker.\n"
        << "# TYPE adscoped_streams_completed_total counter\n"
        << "adscoped_streams_completed_total " << ingest_->streams_completed()
        << "\n";
  }

  out << "# HELP adscoped_http_requests_total HTTP requests answered.\n"
      << "# TYPE adscoped_http_requests_total counter\n"
      << "adscoped_http_requests_total "
      << requests_served_.load(std::memory_order_relaxed) << "\n";
  out << "# HELP adscoped_http_requests_bad_total HTTP requests answered "
         "with a 4xx/5xx status.\n"
      << "# TYPE adscoped_http_requests_bad_total counter\n"
      << "adscoped_http_requests_bad_total "
      << requests_bad_.load(std::memory_order_relaxed) << "\n";
  out << "# HELP adscoped_http_not_modified_total Conditional requests "
         "answered 304 from the ETag match.\n"
      << "# TYPE adscoped_http_not_modified_total counter\n"
      << "adscoped_http_not_modified_total "
      << responses_not_modified_.load(std::memory_order_relaxed) << "\n";
  return out.str();
}

}  // namespace adscope::live
