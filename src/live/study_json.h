// Compatibility shim — the snapshot JSON renderers moved to
// store/study_json.h (the query engine and the legacy /study routes
// share them). Existing live:: call sites keep working through these
// using-declarations; new code should include the store header.
#pragma once

#include "store/study_json.h"

namespace adscope::live {

using store::infra_json;
using store::summary_json;
using store::traffic_json;
using store::users_json;

}  // namespace adscope::live
