// JSON renderers for the /study/* endpoints (schemas: docs/FORMAT.md).
//
// Each function turns an owned StudySnapshot into one self-contained
// JSON document: the same numbers core/report.h prints as text, plus
// the live-window metadata (buckets merged, watermark, drop counts)
// that only exists online. Kept separate from the text renderers so the
// serving layer has a stable machine-readable schema while the human
// report stays free to change wording.
#pragma once

#include <cstddef>
#include <string>

#include "live/live_study.h"
#include "netdb/asn_db.h"

namespace adscope::live {

/// Headline counts: traffic totals, ad shares, user classes A-D,
/// page views — the "what is the ad ratio right now" answer.
std::string summary_json(const StudySnapshot& snapshot);

/// §7-style detail: list attribution, content-type table, the binned
/// request/byte time series and the per-class object-size histograms.
std::string traffic_json(const StudySnapshot& snapshot);

/// §6-style detail: indicator classes with per-family EasyList-ratio
/// ECDF deciles and the configuration estimates.
std::string users_json(const StudySnapshot& snapshot);

/// §8-style detail: server counts, dedicated ad servers and the top-N
/// AS ranking (needs the routing table; pass null to omit the ranking).
std::string infra_json(const StudySnapshot& snapshot,
                       const netdb::AsnDatabase* asn_db,
                       std::size_t top_n = 10);

}  // namespace adscope::live
