#include "live/replay.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <thread>

#include "trace/mmap_reader.h"
#include "trace/reader.h"
#include "trace/record.h"
#include "trace/writer.h"
#include "util/socket.h"

namespace adscope::live {

namespace {

/// Maps record timestamps to wall-clock send deadlines under `speedup`
/// (shared by the re-encoding and the zero-copy senders).
class Pacer {
 public:
  explicit Pacer(double speedup)
      : speedup_(speedup), wall_start_(std::chrono::steady_clock::now()) {}

  /// The wall-clock deadline for a record at `timestamp_ms`, or nullopt
  /// when it may be sent immediately (pacing off, first record, or
  /// already overdue).
  std::optional<std::chrono::steady_clock::time_point> due(
      std::uint64_t timestamp_ms) {
    if (speedup_ <= 0.0) return std::nullopt;
    if (!have_epoch_) {
      trace_epoch_ms_ = timestamp_ms;
      have_epoch_ = true;
      return std::nullopt;
    }
    const double elapsed_trace_ms =
        timestamp_ms >= trace_epoch_ms_
            ? static_cast<double>(timestamp_ms - trace_epoch_ms_)
            : 0.0;
    const auto deadline =
        wall_start_ + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              elapsed_trace_ms / speedup_));
    if (deadline <= std::chrono::steady_clock::now()) return std::nullopt;
    return deadline;
  }

 private:
  double speedup_;
  std::chrono::steady_clock::time_point wall_start_;
  std::uint64_t trace_epoch_ms_ = 0;
  bool have_epoch_ = false;
};

/// TraceSink that re-encodes records into a buffer and drains it to a
/// socket, pacing sends against the record timestamps. Used for
/// time-ordered replay, where reordering forces a fresh encode (the
/// on-disk dictionary interleaving is only valid in file order).
class PacingSender final : public trace::TraceSink {
 public:
  PacingSender(util::Fd fd, const ReplayOptions& options)
      : fd_(std::move(fd)),
        encoder_(buffer_),
        pacer_(options.speedup),
        batch_bytes_(options.batch_bytes == 0 ? 1 : options.batch_bytes) {}

  void on_meta(const trace::TraceMeta& meta) override {
    encoder_.on_meta(meta);
    maybe_drain();
  }

  void on_http(const trace::HttpTransaction& txn) override {
    pace(txn.timestamp_ms);
    encoder_.on_http(txn);
    maybe_drain();
  }

  void on_tls(const trace::TlsFlow& flow) override {
    pace(flow.timestamp_ms);
    encoder_.on_tls(flow);
    maybe_drain();
  }

  /// Sends the end marker and everything still buffered.
  void finish() {
    encoder_.finish();
    drain();
  }

  std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }

 private:
  void pace(std::uint64_t timestamp_ms) {
    if (const auto deadline = pacer_.due(timestamp_ms)) {
      // Flush buffered records before sleeping so the daemon sees them
      // at their trace time, not a batch boundary later.
      drain();
      std::this_thread::sleep_until(*deadline);
    }
  }

  void maybe_drain() {
    if (static_cast<std::size_t>(buffer_.tellp()) >= batch_bytes_) drain();
  }

  void drain() {
    std::string bytes = buffer_.str();
    if (bytes.empty()) return;
    buffer_.str(std::string());
    if (!util::send_all(fd_.get(), bytes)) {
      throw std::runtime_error("replay: daemon closed the connection");
    }
    bytes_sent_ += bytes.size();
  }

  util::Fd fd_;
  std::ostringstream buffer_;
  trace::TraceEncoder encoder_;
  Pacer pacer_;
  std::size_t batch_bytes_;
  std::uint64_t bytes_sent_ = 0;
};

/// Zero-copy sender for pre-sorted traces: record spans come straight
/// out of the mapping (dictionary definitions inline exactly as
/// written), so nothing is re-encoded — the only per-record work is the
/// pacing check and an append into the send buffer.
class RawPacingSender final : public trace::MmapTraceReader::RawSink {
 public:
  RawPacingSender(util::Fd fd, const ReplayOptions& options)
      : fd_(std::move(fd)),
        pacer_(options.speedup),
        batch_bytes_(options.batch_bytes == 0 ? 1 : options.batch_bytes) {}

  void send_header(std::string_view header) {
    buffer_.append(header.data(), header.size());
  }

  void on_raw(const trace::MmapTraceReader::RawRecord& record) override {
    if (const auto deadline = pacer_.due(record.timestamp_ms)) {
      drain();
      std::this_thread::sleep_until(*deadline);
    }
    buffer_.append(record.bytes.data(), record.bytes.size());
    if (buffer_.size() >= batch_bytes_) drain();
  }

  /// Appends the end-of-stream marker (varint kEnd, a single zero
  /// byte) and sends everything still buffered.
  void finish() {
    buffer_.push_back('\0');
    drain();
  }

  std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }

 private:
  void drain() {
    if (buffer_.empty()) return;
    if (!util::send_all(fd_.get(), buffer_)) {
      throw std::runtime_error("replay: daemon closed the connection");
    }
    bytes_sent_ += buffer_.size();
    buffer_.clear();
  }

  util::Fd fd_;
  std::string buffer_;
  Pacer pacer_;
  std::size_t batch_bytes_;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace

void sort_by_time(trace::MemoryTrace& buffered) {
  const auto by_time = [](const auto& a, const auto& b) {
    return a.timestamp_ms < b.timestamp_ms;
  };
  std::stable_sort(buffered.http_mutable().begin(),
                   buffered.http_mutable().end(), by_time);
  std::stable_sort(buffered.tls_mutable().begin(),
                   buffered.tls_mutable().end(), by_time);
}

std::uint64_t replay_time_ordered(const trace::MemoryTrace& buffered,
                                  trace::TraceSink& sink) {
  sink.on_meta(buffered.meta());
  const auto& http = buffered.http();
  const auto& tls = buffered.tls();
  std::size_t h = 0;
  std::size_t t = 0;
  while (h < http.size() || t < tls.size()) {
    const bool take_http =
        t >= tls.size() ||
        (h < http.size() && http[h].timestamp_ms <= tls[t].timestamp_ms);
    if (take_http) {
      sink.on_http(http[h++]);
    } else {
      sink.on_tls(tls[t++]);
    }
  }
  return 1 + http.size() + tls.size();
}

ReplayStats replay_trace(const ReplayOptions& options) {
  const bool mappable = trace::MmapTraceReader::supported(options.trace_path);
  ReplayStats stats;

  if (options.time_order) {
    // Reordering invalidates the file's dictionary interleaving (an
    // entry is defined inline at first use), so this path buffers,
    // sorts and re-encodes. The mapped reader still loads the file
    // faster than the istream one.
    trace::MemoryTrace buffered;
    if (mappable) {
      trace::MmapTraceReader reader(options.trace_path);
      reader.replay(buffered);
    } else {
      trace::FileTraceReader reader(options.trace_path);
      reader.replay(buffered);
    }
    sort_by_time(buffered);

    util::Fd fd = options.unix_path.empty()
                      ? util::connect_tcp(options.host, options.port)
                      : util::connect_unix(options.unix_path);
    const auto start = std::chrono::steady_clock::now();
    PacingSender sender(std::move(fd), options);
    stats.records = replay_time_ordered(buffered, sender);
    sender.finish();
    stats.bytes = sender.bytes_sent();
    stats.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return stats;
  }

  if (mappable) {
    // Pre-sorted trace in a regular file: replay the mapped bytes
    // verbatim — no decode-to-records, no re-encode.
    trace::MmapTraceReader reader(options.trace_path);
    util::Fd fd = options.unix_path.empty()
                      ? util::connect_tcp(options.host, options.port)
                      : util::connect_unix(options.unix_path);
    const auto start = std::chrono::steady_clock::now();
    RawPacingSender sender(std::move(fd), options);
    sender.send_header(reader.header_bytes());
    stats.records = reader.replay_raw(sender);
    sender.finish();
    stats.zero_copy = true;
    stats.bytes = sender.bytes_sent();
    stats.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return stats;
  }

  trace::FileTraceReader reader(options.trace_path);
  util::Fd fd = options.unix_path.empty()
                    ? util::connect_tcp(options.host, options.port)
                    : util::connect_unix(options.unix_path);
  const auto start = std::chrono::steady_clock::now();
  PacingSender sender(std::move(fd), options);
  stats.records = reader.replay(sender);
  sender.finish();
  stats.bytes = sender.bytes_sent();
  stats.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return stats;
}

}  // namespace adscope::live
