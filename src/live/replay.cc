#include "live/replay.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <thread>

#include "trace/reader.h"
#include "trace/record.h"
#include "trace/writer.h"
#include "util/socket.h"

namespace adscope::live {

namespace {

/// TraceSink that re-encodes records into a buffer and drains it to a
/// socket, pacing sends against the record timestamps.
class PacingSender final : public trace::TraceSink {
 public:
  PacingSender(util::Fd fd, const ReplayOptions& options)
      : fd_(std::move(fd)),
        encoder_(buffer_),
        speedup_(options.speedup),
        batch_bytes_(options.batch_bytes == 0 ? 1 : options.batch_bytes),
        wall_start_(std::chrono::steady_clock::now()) {}

  void on_meta(const trace::TraceMeta& meta) override {
    encoder_.on_meta(meta);
    maybe_drain();
  }

  void on_http(const trace::HttpTransaction& txn) override {
    pace(txn.timestamp_ms);
    encoder_.on_http(txn);
    maybe_drain();
  }

  void on_tls(const trace::TlsFlow& flow) override {
    pace(flow.timestamp_ms);
    encoder_.on_tls(flow);
    maybe_drain();
  }

  /// Sends the end marker and everything still buffered.
  void finish() {
    encoder_.finish();
    drain();
  }

  std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }

 private:
  void pace(std::uint64_t timestamp_ms) {
    if (speedup_ <= 0.0) return;
    if (!have_epoch_) {
      trace_epoch_ms_ = timestamp_ms;
      have_epoch_ = true;
      return;
    }
    const double elapsed_trace_ms =
        timestamp_ms >= trace_epoch_ms_
            ? static_cast<double>(timestamp_ms - trace_epoch_ms_)
            : 0.0;
    const auto due =
        wall_start_ + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              elapsed_trace_ms / speedup_));
    if (due > std::chrono::steady_clock::now()) {
      // Flush buffered records before sleeping so the daemon sees them
      // at their trace time, not a batch boundary later.
      drain();
      std::this_thread::sleep_until(due);
    }
  }

  void maybe_drain() {
    if (static_cast<std::size_t>(buffer_.tellp()) >= batch_bytes_) drain();
  }

  void drain() {
    std::string bytes = buffer_.str();
    if (bytes.empty()) return;
    buffer_.str(std::string());
    if (!util::send_all(fd_.get(), bytes)) {
      throw std::runtime_error("replay: daemon closed the connection");
    }
    bytes_sent_ += bytes.size();
  }

  util::Fd fd_;
  std::ostringstream buffer_;
  trace::TraceEncoder encoder_;
  double speedup_;
  std::size_t batch_bytes_;
  std::chrono::steady_clock::time_point wall_start_;
  std::uint64_t trace_epoch_ms_ = 0;
  bool have_epoch_ = false;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace

void sort_by_time(trace::MemoryTrace& buffered) {
  const auto by_time = [](const auto& a, const auto& b) {
    return a.timestamp_ms < b.timestamp_ms;
  };
  std::stable_sort(buffered.http_mutable().begin(),
                   buffered.http_mutable().end(), by_time);
  std::stable_sort(buffered.tls_mutable().begin(),
                   buffered.tls_mutable().end(), by_time);
}

std::uint64_t replay_time_ordered(const trace::MemoryTrace& buffered,
                                  trace::TraceSink& sink) {
  sink.on_meta(buffered.meta());
  const auto& http = buffered.http();
  const auto& tls = buffered.tls();
  std::size_t h = 0;
  std::size_t t = 0;
  while (h < http.size() || t < tls.size()) {
    const bool take_http =
        t >= tls.size() ||
        (h < http.size() && http[h].timestamp_ms <= tls[t].timestamp_ms);
    if (take_http) {
      sink.on_http(http[h++]);
    } else {
      sink.on_tls(tls[t++]);
    }
  }
  return 1 + http.size() + tls.size();
}

ReplayStats replay_trace(const ReplayOptions& options) {
  trace::FileTraceReader reader(options.trace_path);
  trace::MemoryTrace buffered;
  if (options.time_order) {
    reader.replay(buffered);
    sort_by_time(buffered);
  }

  util::Fd fd = options.unix_path.empty()
                    ? util::connect_tcp(options.host, options.port)
                    : util::connect_unix(options.unix_path);

  const auto start = std::chrono::steady_clock::now();
  PacingSender sender(std::move(fd), options);
  ReplayStats stats;
  stats.records = options.time_order ? replay_time_ordered(buffered, sender)
                                     : reader.replay(sender);
  sender.finish();
  stats.bytes = sender.bytes_sent();
  stats.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return stats;
}

}  // namespace adscope::live
