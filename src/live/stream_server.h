// TraceStreamServer — accepts .adst byte streams over TCP or a Unix
// socket and feeds them into a LiveStudy.
//
// One acceptor thread waits on the listener (poll with a short timeout
// so stop() is prompt); each connection gets its own handler thread that
// reads chunks, runs them through a trace::StreamDecoder and forwards
// the records to the study — the study's bounded shard queues provide
// the backpressure, so a slow analysis stalls the socket reads instead
// of growing memory.
//
// A clean end-of-stream marker means "this trace is complete": the
// server seals every bucket and flushes the study, so the HTTP views
// immediately reflect the whole stream (the end-to-end identity
// guarantee). A peer that just disconnects leaves its records in the
// normal watermark-driven seal cycle. Malformed streams are dropped and
// counted, never fatal.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "live/live_study.h"
#include "util/annotations.h"
#include "util/socket.h"

namespace adscope::live {

struct StreamServerOptions {
  /// Accept/read poll granularity — the latency of stop().
  int poll_ms = 100;
  std::size_t read_buffer_bytes = 64 * 1024;
  /// Connections beyond this are accepted and immediately closed.
  std::size_t max_connections = 64;
  /// Call study.maintain() from the acceptor loop whenever the
  /// watermark enters a new bucket (off for tests that drive sealing
  /// explicitly).
  bool auto_maintain = true;
};

class TraceStreamServer {
 public:
  TraceStreamServer(LiveStudy& study, util::ListenSocket socket,
                    StreamServerOptions options = {});
  ~TraceStreamServer();

  TraceStreamServer(const TraceStreamServer&) = delete;
  TraceStreamServer& operator=(const TraceStreamServer&) = delete;

  /// Launches the acceptor thread. Call once.
  void start();

  /// Stops accepting, interrupts the connection handlers and joins
  /// every thread. In-flight decoded records are already in the study;
  /// pair with study.seal_all()/flush() for a lossless shutdown.
  /// Idempotent.
  void stop();

  std::uint16_t port() const noexcept { return socket_.port(); }
  const std::string& unix_socket_path() const noexcept {
    return socket_.path();
  }

  // -- observability ---------------------------------------------------
  std::uint64_t connections_total() const noexcept {
    return connections_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_active() const noexcept {
    return connections_active_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_rejected() const noexcept {
    return connections_rejected_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_received() const noexcept {
    return bytes_received_.load(std::memory_order_relaxed);
  }
  std::uint64_t decode_errors() const noexcept {
    return decode_errors_.load(std::memory_order_relaxed);
  }
  /// Streams that delivered a clean end-of-stream marker.
  std::uint64_t streams_completed() const noexcept {
    return streams_completed_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void handle_connection(util::Fd fd);
  void reap_finished_connections();

  LiveStudy& study_;
  util::ListenSocket socket_;
  StreamServerOptions options_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  util::Mutex connections_mutex_;
  std::vector<std::thread> connections_
      ADSCOPE_GUARDED_BY(connections_mutex_);
  std::uint64_t last_maintained_bucket_ = UINT64_MAX;  // acceptor-only

  std::atomic<std::uint64_t> connections_total_{0};
  std::atomic<std::uint64_t> connections_active_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> decode_errors_{0};
  std::atomic<std::uint64_t> streams_completed_{0};
};

}  // namespace adscope::live
