#include "live/live_study.h"

#include <stdexcept>

#include "util/hash.h"

namespace adscope::live {

// ---------------------------------------------------------------------------
// LiveStudy

LiveStudy::LiveStudy(const adblock::FilterEngine& engine,
                     const netdb::AbpServerRegistry& registry,
                     LiveStudyOptions options, util::ThreadPool* pool)
    : engine_(engine), registry_(registry), options_(options) {
  if (options_.bucket_seconds == 0) options_.bucket_seconds = 1;
  if (options_.window_buckets == 0) options_.window_buckets = 1;
  const auto shards = util::resolve_thread_count(options_.threads);
  if (pool != nullptr) {
    if (pool->thread_count() < shards) {
      throw std::invalid_argument(
          "LiveStudy: pool smaller than shard count (drain loops would "
          "starve each other)");
    }
    pool_ = pool;
  } else {
    owned_pool_ = std::make_unique<util::ThreadPool>(shards);
    pool_ = owned_pool_.get();
  }

  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, options_.queue_capacity));
  }
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->done = pool_->submit([this, s] { worker_loop(*s); });
  }
}

LiveStudy::~LiveStudy() {
  try {
    close();
  } catch (...) {
    // Worker exceptions surface through close() for callers that care;
    // the destructor must not throw.
  }
}

std::size_t LiveStudy::shard_of(netdb::IpV4 client_ip) const noexcept {
  // Same FNV spreading as ParallelTraceStudy: client addresses share
  // prefixes, plain modulo would lump whole subnets together.
  return util::fnv1a_u64(client_ip) % shards_.size();
}

void LiveStudy::note_watermark(std::uint64_t timestamp_ms) {
  auto seen = watermark_ms_.load(std::memory_order_relaxed);
  while (timestamp_ms > seen &&
         !watermark_ms_.compare_exchange_weak(seen, timestamp_ms,
                                              std::memory_order_relaxed)) {
  }
}

void LiveStudy::on_meta(const trace::TraceMeta& meta) {
  util::MutexLock lock(meta_mutex_);
  if (meta_set_.load(std::memory_order_relaxed)) {
    metas_ignored_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  meta_ = meta;
  meta_set_.store(true, std::memory_order_release);
}

void LiveStudy::push_record(std::size_t shard, Record record) {
  if (!shards_[shard]->queue.push(std::move(record))) {
    closed_drops_.fetch_add(1, std::memory_order_relaxed);
  }
}

void LiveStudy::on_http(const trace::HttpTransaction& txn) {
  if (!meta_set_.load(std::memory_order_acquire)) {
    pre_meta_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  note_watermark(txn.timestamp_ms);
  records_ingested_.fetch_add(1, std::memory_order_relaxed);
  push_record(shard_of(txn.client_ip), Record{txn});
}

void LiveStudy::on_tls(const trace::TlsFlow& flow) {
  if (!meta_set_.load(std::memory_order_acquire)) {
    pre_meta_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  note_watermark(flow.timestamp_ms);
  records_ingested_.fetch_add(1, std::memory_order_relaxed);
  push_record(shard_of(flow.client_ip), Record{flow});
}

void LiveStudy::broadcast(Record record) {
  for (std::size_t i = 0; i < shards_.size(); ++i) push_record(i, record);
}

void LiveStudy::seal_before(std::uint64_t bucket) {
  broadcast(Record{Control{Control::Kind::kSealBefore, bucket}});
}

void LiveStudy::evict_before(std::uint64_t bucket) {
  broadcast(Record{Control{Control::Kind::kEvictBefore, bucket}});
}

void LiveStudy::maintain() {
  if (records_ingested() == 0) return;
  const auto open = current_bucket();
  if (open > options_.seal_lag_buckets) {
    seal_before(open - options_.seal_lag_buckets);
  }
  if (open >= options_.window_buckets) {
    evict_before(open - options_.window_buckets + 1);
  }
}

void LiveStudy::flush() {
  auto barrier = std::make_shared<FlushBarrier>();
  std::size_t expected = 0;
  for (auto& shard : shards_) {
    // Count only queues that accept the barrier: after close() the
    // workers have already drained everything, nothing to wait for.
    {
      util::MutexLock lock(barrier->mutex);
      ++barrier->remaining;
    }
    if (shard->queue.push(Record{barrier})) {
      ++expected;
    } else {
      util::MutexLock lock(barrier->mutex);
      --barrier->remaining;
    }
  }
  if (expected == 0) return;
  util::MutexLock lock(barrier->mutex);
  while (barrier->remaining != 0) barrier->cv.wait(barrier->mutex);
}

void LiveStudy::worker_loop(Shard& shard) {
  Record record;
  while (shard.queue.pop(record)) {
    if (auto* txn = std::get_if<trace::HttpTransaction>(&record)) {
      process(shard, txn->timestamp_ms, txn, nullptr);
    } else if (auto* flow = std::get_if<trace::TlsFlow>(&record)) {
      process(shard, flow->timestamp_ms, nullptr, flow);
    } else if (auto* control = std::get_if<Control>(&record)) {
      apply_control(shard, *control);
    } else {
      auto& barrier = *std::get<std::shared_ptr<FlushBarrier>>(record);
      {
        util::MutexLock lock(barrier.mutex);
        --barrier.remaining;
      }
      barrier.cv.notify_all();
    }
  }
  // Queue closed and drained: buckets stay as-is; close() decides
  // whether a final snapshot seals them.
}

void LiveStudy::process(Shard& shard, std::uint64_t timestamp_ms,
                        const trace::HttpTransaction* txn,
                        const trace::TlsFlow* flow) {
  const auto bucket_id = bucket_of_ms(timestamp_ms);
  util::MutexLock lock(shard.mutex);
  if (bucket_id < shard.floor) {
    late_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto it = shard.buckets.find(bucket_id);
  if (it == shard.buckets.end()) {
    auto bucket = std::make_unique<Bucket>(engine_, registry_, options_.study);
    {
      // The push path guarantees meta_ was registered before any data
      // record was enqueued.
      util::MutexLock meta_lock(meta_mutex_);
      bucket->study.on_meta(meta_);
    }
    it = shard.buckets.emplace(bucket_id, std::move(bucket)).first;
  }
  if (it->second->sealed) {
    late_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (txn != nullptr) {
    it->second->study.on_http(*txn);
  } else {
    it->second->study.on_tls(*flow);
  }
}

void LiveStudy::apply_control(Shard& shard, const Control& control) {
  util::MutexLock lock(shard.mutex);
  switch (control.kind) {
    case Control::Kind::kSealBefore:
      for (auto& [id, bucket] : shard.buckets) {
        if (id >= control.bucket) break;
        if (!bucket->sealed) {
          bucket->study.finish();
          bucket->sealed = true;
          buckets_sealed_.fetch_add(1, std::memory_order_relaxed);
          if (options_.on_seal) {
            options_.on_seal(id, shard.index, bucket->study);
          }
        }
      }
      if (control.bucket != kAllBuckets && control.bucket > shard.floor) {
        shard.floor = control.bucket;
      }
      break;
    case Control::Kind::kEvictBefore: {
      auto it = shard.buckets.begin();
      while (it != shard.buckets.end() && it->first < control.bucket) {
        it = shard.buckets.erase(it);
        buckets_evicted_.fetch_add(1, std::memory_order_relaxed);
      }
      if (control.bucket > shard.floor) shard.floor = control.bucket;
      break;
    }
  }
}

StudySnapshot LiveStudy::snapshot(std::uint64_t min_bucket,
                                  std::uint64_t max_bucket) const {
  trace::TraceMeta meta;
  {
    util::MutexLock lock(meta_mutex_);
    meta = meta_;
  }
  StudySnapshot snap(meta, options_.study);
  snap.bucket_seconds = options_.bucket_seconds;
  snap.watermark_ms = watermark_ms();
  snap.records_ingested = records_ingested();
  snap.records_dropped = total_drops();
  // Shard-major merge order; every aggregate's merge() is commutative
  // and associative (asserted by the PR-1 merge-law tests), so this is
  // equivalent to any other order, and deterministic.
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    for (const auto& [id, bucket] : shard->buckets) {
      if (id < min_bucket || id > max_bucket || !bucket->sealed) continue;
      snap.absorb(bucket->study);
      snap.note_bucket(id);
    }
  }
  return snap;
}

StudySnapshot LiveStudy::snapshot_window(std::uint64_t window_s) const {
  if (window_s == 0) return snapshot();
  const auto open = current_bucket();
  const auto span = (window_s + options_.bucket_seconds - 1) /
                    options_.bucket_seconds;
  const auto min_bucket = open >= span ? open - span + 1 : 0;
  return snapshot(min_bucket, kAllBuckets);
}

void LiveStudy::close() {
  if (closed_.exchange(true)) {
    for (auto& shard : shards_) {
      if (shard->done.valid()) shard->done.get();
    }
    return;
  }
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) shard->done.get();  // rethrows worker errors
}

std::size_t LiveStudy::queue_depth() const {
  std::size_t depth = 0;
  for (const auto& shard : shards_) depth += shard->queue.size();
  return depth;
}

std::size_t LiveStudy::bucket_count() const {
  std::size_t count = 0;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    count += shard->buckets.size();
  }
  return count;
}

core::ClassifierCounters LiveStudy::classifier_counters() const {
  core::ClassifierCounters totals;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    for (const auto& [id, bucket] : shard->buckets) {
      totals.merge(bucket->study.classifier().counters());
    }
  }
  return totals;
}

}  // namespace adscope::live
