#include "live/stream_server.h"

#include <utility>

#include "trace/stream.h"

namespace adscope::live {

TraceStreamServer::TraceStreamServer(LiveStudy& study,
                                     util::ListenSocket socket,
                                     StreamServerOptions options)
    : study_(study), socket_(std::move(socket)), options_(options) {
  if (options_.poll_ms <= 0) options_.poll_ms = 100;
  if (options_.read_buffer_bytes == 0) options_.read_buffer_bytes = 4096;
}

TraceStreamServer::~TraceStreamServer() { stop(); }

void TraceStreamServer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  acceptor_ = std::thread([this] { accept_loop(); });
}

void TraceStreamServer::stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> handlers;
  {
    util::MutexLock lock(connections_mutex_);
    handlers.swap(connections_);
  }
  for (auto& thread : handlers) {
    if (thread.joinable()) thread.join();
  }
  running_.store(false);
  stopping_.store(false);
}

void TraceStreamServer::reap_finished_connections() {
  // Handler threads detach themselves from the active count when done;
  // their std::thread objects are joined here (fast — already exited)
  // so the vector does not grow without bound on long uptimes.
  if (connections_active_.load(std::memory_order_relaxed) > 0) return;
  util::MutexLock lock(connections_mutex_);
  if (connections_active_.load(std::memory_order_relaxed) > 0) return;
  for (auto& thread : connections_) {
    if (thread.joinable()) thread.join();
  }
  connections_.clear();
}

void TraceStreamServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    util::Fd client = socket_.accept(options_.poll_ms);
    if (options_.auto_maintain) {
      const auto bucket = study_.current_bucket();
      if (bucket != last_maintained_bucket_ && study_.records_ingested() > 0) {
        study_.maintain();
        last_maintained_bucket_ = bucket;
      }
    }
    if (!client.valid()) {
      reap_finished_connections();
      continue;
    }
    if (connections_active_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;  // Fd destructor closes the socket
    }
    connections_total_.fetch_add(1, std::memory_order_relaxed);
    connections_active_.fetch_add(1, std::memory_order_relaxed);
    util::MutexLock lock(connections_mutex_);
    connections_.emplace_back(
        [this, fd = std::move(client)]() mutable {
          handle_connection(std::move(fd));
          connections_active_.fetch_sub(1, std::memory_order_relaxed);
        });
  }
}

void TraceStreamServer::handle_connection(util::Fd fd) {
  trace::StreamDecoder decoder(study_);
  std::string buffer(options_.read_buffer_bytes, '\0');
  bool clean_end = false;
  try {
    while (!stopping_.load(std::memory_order_relaxed)) {
      if (!util::wait_readable(fd.get(), options_.poll_ms)) continue;
      const auto n = util::recv_some(fd.get(), buffer.data(), buffer.size());
      if (n == 0) break;  // peer closed
      bytes_received_.fetch_add(n, std::memory_order_relaxed);
      decoder.feed(std::string_view(buffer.data(), n));
      if (decoder.finished()) {
        clean_end = true;
        break;
      }
    }
  } catch (const trace::TraceFormatError&) {
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  } catch (const std::system_error&) {
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (clean_end) {
    // End marker = "trace complete": make every record visible to the
    // query side before the next scrape.
    study_.seal_all();
    study_.flush();
    streams_completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace adscope::live
