// HttpEndpoint — minimal HTTP/1.1 query server for a LiveStudy and its
// snapshot store.
//
// Serves GET only, no TLS. HTTP/1.1 connections are kept alive
// (pipelined requests drain in order) until the client sends
// `Connection: close`, the idle timeout expires, or the per-connection
// request cap is reached; HTTP/1.0 closes after each response unless
// the client asks for keep-alive. Every JSON study/query response
// carries a strong ETag derived from the serving-state fingerprint
// (tree epoch + ingest counters), so `If-None-Match` revalidation
// answers 304 without rendering.
//
// Routes:
//   /healthz                    liveness probe ("ok")
//   /metrics                    Prometheus text format (ingest rate,
//                               queue depth, drops, buckets, store and
//                               cache gauges, HTTP stats)
//   /study/summary[?window_s=N] headline JSON (traffic + user classes)
//   /study/traffic[?window_s=N] §7 detail: lists, content types,
//                               time series, size histograms
//   /study/users[?window_s=N]   §6 detail: indicator classes, ECDFs,
//                               configuration estimates
//   /study/infra[?window_s=N]   §8 detail: servers, top ASes, RTB
//   /query/...                  snapshot-store path queries (grammar:
//                               docs/QUERY.md), when a store is wired
//
// `window_s` restricts the merge to the trailing N seconds (whole
// buckets); default is every sealed bucket still in the ring. Errors
// are uniform across all routes: unknown paths answer 404 and
// malformed selectors/parameters 400, both with the structured
// `{"error":{...}}` body from store::error_json.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "live/live_study.h"
#include "live/stream_server.h"
#include "netdb/asn_db.h"
#include "store/store_service.h"
#include "util/annotations.h"
#include "util/socket.h"

namespace adscope::live {

struct HttpEndpointOptions {
  /// Accept/read poll granularity — the latency of stop().
  int poll_ms = 100;
  std::size_t max_request_bytes = 8192;
  std::size_t max_connections = 32;
  /// Rows in /study/infra's AS ranking.
  std::size_t top_ases = 10;
  /// Keep-alive connections are closed after this much time without a
  /// complete request.
  int idle_timeout_ms = 5000;
  /// Requests served on one connection before it is closed (bounds how
  /// long a single client can pin a handler thread).
  std::size_t max_requests_per_connection = 100;
};

class HttpEndpoint {
 public:
  /// `asn_db` (nullable) enables the AS ranking; `ingest` (nullable)
  /// adds the stream server's counters to /metrics; `store` (nullable)
  /// enables the /query routes and the store gauges. All must outlive
  /// the endpoint.
  HttpEndpoint(LiveStudy& study, util::ListenSocket socket,
               const netdb::AsnDatabase* asn_db = nullptr,
               const TraceStreamServer* ingest = nullptr,
               store::StoreService* store = nullptr,
               HttpEndpointOptions options = {});
  ~HttpEndpoint();

  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  void start();
  void stop();

  std::uint16_t port() const noexcept { return socket_.port(); }

  std::uint64_t requests_served() const noexcept {
    return requests_served_.load(std::memory_order_relaxed);
  }

  struct Response {
    int status = 200;
    std::string content_type = "application/json";
    std::string body;
    /// Strong validator; emitted as an ETag header when non-empty.
    std::string etag;
  };

  /// Route dispatch without the socket layer — what the daemon's
  /// shutdown snapshot and the unit tests call directly. A non-empty
  /// `if_none_match` revalidates: a matching ETag answers 304 with an
  /// empty body.
  Response handle(const std::string& method, const std::string& target,
                  const std::string& if_none_match = "") const;

  /// The Prometheus exposition (also available as /metrics).
  std::string render_metrics() const;

 private:
  void accept_loop();
  void handle_connection(util::Fd fd);
  static std::string status_line(int status);

  /// ETag fingerprint for the legacy /study routes: the LiveStudy's
  /// serving-state counters (seals, evictions, watermark, ingest).
  std::string live_etag() const;
  Response handle_study(const std::string& target) const;

  LiveStudy& study_;
  util::ListenSocket socket_;
  const netdb::AsnDatabase* asn_db_;
  const TraceStreamServer* ingest_;
  store::StoreService* store_;
  HttpEndpointOptions options_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  util::Mutex connections_mutex_;
  std::vector<std::thread> connections_
      ADSCOPE_GUARDED_BY(connections_mutex_);
  std::atomic<std::uint64_t> connections_active_{0};

  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> requests_bad_{0};
  std::atomic<std::uint64_t> responses_not_modified_{0};

  // Ingest-rate gauge: delta of records_ingested between scrapes.
  mutable util::Mutex rate_mutex_;
  mutable std::uint64_t last_scrape_records_ ADSCOPE_GUARDED_BY(rate_mutex_) =
      0;
  mutable std::chrono::steady_clock::time_point last_scrape_time_
      ADSCOPE_GUARDED_BY(rate_mutex_){};
  mutable bool scraped_before_ ADSCOPE_GUARDED_BY(rate_mutex_) = false;
};

}  // namespace adscope::live
