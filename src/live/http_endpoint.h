// HttpEndpoint — minimal HTTP/1.1 query server for a LiveStudy.
//
// Serves GET only, one request per connection (Connection: close), no
// TLS, no keep-alive: operational plumbing in front of snapshot(), in
// the spirit of the ugreg "JSON aggregator in front of a slow backend"
// pattern — queries merge sealed buckets on demand and never block
// ingest.
//
// Routes:
//   /healthz                    liveness probe ("ok")
//   /metrics                    Prometheus text format (ingest rate,
//                               queue depth, drops, buckets, HTTP stats)
//   /study/summary[?window_s=N] headline JSON (traffic + user classes)
//   /study/traffic[?window_s=N] §7 detail: lists, content types,
//                               time series, size histograms
//   /study/users[?window_s=N]   §6 detail: indicator classes, ECDFs,
//                               configuration estimates
//   /study/infra[?window_s=N]   §8 detail: servers, top ASes, RTB
//
// `window_s` restricts the merge to the trailing N seconds (whole
// buckets); default is every sealed bucket still in the ring.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "live/live_study.h"
#include "live/stream_server.h"
#include "netdb/asn_db.h"
#include "util/annotations.h"
#include "util/socket.h"

namespace adscope::live {

struct HttpEndpointOptions {
  /// Accept/read poll granularity — the latency of stop().
  int poll_ms = 100;
  std::size_t max_request_bytes = 8192;
  std::size_t max_connections = 32;
  /// Rows in /study/infra's AS ranking.
  std::size_t top_ases = 10;
};

class HttpEndpoint {
 public:
  /// `asn_db` (nullable) enables the AS ranking; `ingest` (nullable)
  /// adds the stream server's counters to /metrics. Both must outlive
  /// the endpoint.
  HttpEndpoint(LiveStudy& study, util::ListenSocket socket,
               const netdb::AsnDatabase* asn_db = nullptr,
               const TraceStreamServer* ingest = nullptr,
               HttpEndpointOptions options = {});
  ~HttpEndpoint();

  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  void start();
  void stop();

  std::uint16_t port() const noexcept { return socket_.port(); }

  std::uint64_t requests_served() const noexcept {
    return requests_served_.load(std::memory_order_relaxed);
  }

  struct Response {
    int status = 200;
    std::string content_type = "application/json";
    std::string body;
  };

  /// Route dispatch without the socket layer — what the daemon's
  /// shutdown snapshot and the unit tests call directly.
  Response handle(const std::string& method, const std::string& target) const;

  /// The Prometheus exposition (also available as /metrics).
  std::string render_metrics() const;

 private:
  void accept_loop();
  void handle_connection(util::Fd fd);
  static std::string status_line(int status);

  LiveStudy& study_;
  util::ListenSocket socket_;
  const netdb::AsnDatabase* asn_db_;
  const TraceStreamServer* ingest_;
  HttpEndpointOptions options_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  util::Mutex connections_mutex_;
  std::vector<std::thread> connections_
      ADSCOPE_GUARDED_BY(connections_mutex_);
  std::atomic<std::uint64_t> connections_active_{0};

  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> requests_bad_{0};

  // Ingest-rate gauge: delta of records_ingested between scrapes.
  mutable util::Mutex rate_mutex_;
  mutable std::uint64_t last_scrape_records_ ADSCOPE_GUARDED_BY(rate_mutex_) =
      0;
  mutable std::chrono::steady_clock::time_point last_scrape_time_
      ADSCOPE_GUARDED_BY(rate_mutex_){};
  mutable bool scraped_before_ ADSCOPE_GUARDED_BY(rate_mutex_) = false;
};

}  // namespace adscope::live
