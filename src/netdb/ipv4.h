// IPv4 address and prefix helpers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace adscope::netdb {

/// Host-order 32-bit IPv4 address.
using IpV4 = std::uint32_t;

std::string to_string(IpV4 ip);
std::optional<IpV4> parse_ipv4(std::string_view text);

/// CIDR prefix, e.g. 10.20.0.0/16.
struct Prefix {
  IpV4 network = 0;
  std::uint8_t length = 0;

  bool contains(IpV4 ip) const noexcept {
    if (length == 0) return true;
    const IpV4 mask = length >= 32 ? ~IpV4{0} : ~((IpV4{1} << (32 - length)) - 1);
    return (ip & mask) == (network & mask);
  }
};

std::optional<Prefix> parse_prefix(std::string_view text);
std::string to_string(const Prefix& prefix);

}  // namespace adscope::netdb
