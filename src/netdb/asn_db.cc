#include "netdb/asn_db.h"

#include <algorithm>

namespace adscope::netdb {

struct AsnDatabase::Node {
  std::unique_ptr<Node> child[2];
  AsNumber as_number = kUnknownAs;
  bool terminal = false;
};

AsnDatabase::AsnDatabase() : root_(std::make_unique<Node>()) {}
AsnDatabase::~AsnDatabase() = default;
AsnDatabase::AsnDatabase(AsnDatabase&&) noexcept = default;
AsnDatabase& AsnDatabase::operator=(AsnDatabase&&) noexcept = default;

void AsnDatabase::add_route(const Prefix& prefix, AsNumber as_number) {
  Node* node = root_.get();
  for (std::uint8_t depth = 0; depth < prefix.length; ++depth) {
    const unsigned bit = (prefix.network >> (31 - depth)) & 1U;
    if (!node->child[bit]) node->child[bit] = std::make_unique<Node>();
    node = node->child[bit].get();
  }
  if (!node->terminal) ++routes_;
  node->terminal = true;
  node->as_number = as_number;
}

AsNumber AsnDatabase::lookup(IpV4 ip) const noexcept {
  const Node* node = root_.get();
  AsNumber best = node->terminal ? node->as_number : kUnknownAs;
  for (int depth = 0; depth < 32 && node != nullptr; ++depth) {
    const unsigned bit = (ip >> (31 - depth)) & 1U;
    node = node->child[bit].get();
    if (node != nullptr && node->terminal) best = node->as_number;
  }
  return best;
}

void AsnDatabase::set_as_info(AsNumber as_number, std::string name) {
  auto it = std::find_if(infos_.begin(), infos_.end(), [&](const AsInfo& i) {
    return i.number == as_number;
  });
  if (it != infos_.end()) {
    it->name = std::move(name);
  } else {
    infos_.push_back(AsInfo{as_number, std::move(name)});
  }
}

std::string AsnDatabase::as_name(AsNumber as_number) const {
  for (const auto& info : infos_) {
    if (info.number == as_number) return info.name;
  }
  return "AS" + std::to_string(as_number);
}

}  // namespace adscope::netdb
