#include "netdb/ipv4.h"

#include <array>
#include <cstdio>

#include "util/strings.h"

namespace adscope::netdb {

std::string to_string(IpV4 ip) {
  std::array<char, 16> buf{};
  std::snprintf(buf.data(), buf.size(), "%u.%u.%u.%u", (ip >> 24) & 0xFF,
                (ip >> 16) & 0xFF, (ip >> 8) & 0xFF, ip & 0xFF);
  return std::string(buf.data());
}

std::optional<IpV4> parse_ipv4(std::string_view text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  IpV4 ip = 0;
  for (const auto part : parts) {
    std::uint64_t octet = 0;
    if (part.empty() || part.size() > 3 || !util::parse_u64(part, octet) ||
        octet > 255) {
      return std::nullopt;
    }
    ip = (ip << 8) | static_cast<IpV4>(octet);
  }
  return ip;
}

std::optional<Prefix> parse_prefix(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto ip = parse_ipv4(text.substr(0, slash));
  std::uint64_t length = 0;
  if (!ip || !util::parse_u64(text.substr(slash + 1), length) || length > 32) {
    return std::nullopt;
  }
  return Prefix{*ip, static_cast<std::uint8_t>(length)};
}

std::string to_string(const Prefix& prefix) {
  return to_string(prefix.network) + "/" + std::to_string(prefix.length);
}

}  // namespace adscope::netdb
