// Registry of Adblock Plus filter-update servers.
//
// The paper's second ad-blocker indicator (§3.2) is a connection to an
// Adblock Plus server on port 443, identified by resolving the update
// hostnames with multiple DNS resolvers before and after the capture. In
// this reproduction the registry is populated from the synthetic
// ecosystem's allocation — the moral equivalent of that active
// measurement.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "netdb/ipv4.h"

namespace adscope::netdb {

class AbpServerRegistry {
 public:
  void add_server(IpV4 ip) { ips_.insert(ip); }

  bool is_abp_server(IpV4 ip) const noexcept { return ips_.contains(ip); }

  std::size_t size() const noexcept { return ips_.size(); }

  std::vector<IpV4> servers() const {
    return std::vector<IpV4>(ips_.begin(), ips_.end());
  }

 private:
  std::unordered_set<IpV4> ips_;
};

}  // namespace adscope::netdb
