// IP -> Autonomous System mapping via longest-prefix match.
//
// The paper resolves ad-server IPs to ASes with the global routing table
// (§8.1); we provide the same function over the synthetic ecosystem's
// prefix allocations. Implemented as a binary trie keyed on address bits —
// the textbook LPM structure, adequate at our table sizes and exact.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "netdb/ipv4.h"

namespace adscope::netdb {

using AsNumber = std::uint32_t;
constexpr AsNumber kUnknownAs = 0;

struct AsInfo {
  AsNumber number = kUnknownAs;
  std::string name;  // "Google", "Akamai", ...
};

class AsnDatabase {
 public:
  AsnDatabase();
  ~AsnDatabase();
  AsnDatabase(AsnDatabase&&) noexcept;
  AsnDatabase& operator=(AsnDatabase&&) noexcept;
  AsnDatabase(const AsnDatabase&) = delete;
  AsnDatabase& operator=(const AsnDatabase&) = delete;

  /// Register a route. Later insertions with the same prefix overwrite.
  void add_route(const Prefix& prefix, AsNumber as_number);

  /// Register AS metadata (name lookup for reports).
  void set_as_info(AsNumber as_number, std::string name);

  /// Longest-prefix match; kUnknownAs when no route covers `ip`.
  AsNumber lookup(IpV4 ip) const noexcept;

  /// Name for an AS number ("AS<nr>" fallback).
  std::string as_name(AsNumber as_number) const;

  std::size_t route_count() const noexcept { return routes_; }

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  std::vector<AsInfo> infos_;
  std::size_t routes_ = 0;
};

}  // namespace adscope::netdb
