// User-Agent string classification.
//
// The paper separates devices behind NAT gateways by (IP, User-Agent)
// pair and then restricts the ad-blocker analysis to strings that belong
// to well-known desktop or mobile *browsers*, discarding consoles, smart
// TVs, update tools and app-specific agents (§6, §6.1). This module
// implements that annotation step.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace adscope::ua {

enum class BrowserFamily : std::uint8_t {
  kFirefox,
  kChrome,
  kSafari,
  kInternetExplorer,
  kOther,  // recognized browser outside the four families
  kNone,   // not a browser
};

enum class DeviceClass : std::uint8_t {
  kDesktop,
  kMobile,
  kConsole,
  kSmartTv,
  kApp,     // mobile/desktop application with a custom agent
  kRobot,   // crawlers, update tools, media players
  kUnknown,
};

std::string_view to_string(BrowserFamily family) noexcept;
std::string_view to_string(DeviceClass device) noexcept;

struct AgentInfo {
  BrowserFamily family = BrowserFamily::kNone;
  DeviceClass device = DeviceClass::kUnknown;
  int major_version = 0;

  /// The paper's analysis population: a desktop browser of a known family
  /// or any mobile browser.
  bool is_browser() const noexcept {
    return family != BrowserFamily::kNone &&
           (device == DeviceClass::kDesktop || device == DeviceClass::kMobile);
  }
};

/// Parse a User-Agent header value. Unknown strings yield
/// {kNone, kUnknown} and are excluded from browser-level analyses.
AgentInfo parse_user_agent(std::string_view user_agent);

}  // namespace adscope::ua
