#include "ua/user_agent.h"

#include "util/strings.h"

namespace adscope::ua {

namespace {

using util::ifind;

int version_after(std::string_view ua, std::string_view token) {
  const auto pos = ifind(ua, token);
  if (pos == std::string_view::npos) return 0;
  std::size_t i = pos + token.size();
  int version = 0;
  while (i < ua.size() && util::is_ascii_digit(ua[i])) {
    version = version * 10 + (ua[i] - '0');
    ++i;
  }
  return version;
}

bool contains(std::string_view ua, std::string_view needle) {
  return ifind(ua, needle) != std::string_view::npos;
}

}  // namespace

std::string_view to_string(BrowserFamily family) noexcept {
  switch (family) {
    case BrowserFamily::kFirefox: return "Firefox";
    case BrowserFamily::kChrome: return "Chrome";
    case BrowserFamily::kSafari: return "Safari";
    case BrowserFamily::kInternetExplorer: return "IE";
    case BrowserFamily::kOther: return "OtherBrowser";
    case BrowserFamily::kNone: return "None";
  }
  return "None";
}

std::string_view to_string(DeviceClass device) noexcept {
  switch (device) {
    case DeviceClass::kDesktop: return "PC";
    case DeviceClass::kMobile: return "Mobile";
    case DeviceClass::kConsole: return "Console";
    case DeviceClass::kSmartTv: return "SmartTV";
    case DeviceClass::kApp: return "App";
    case DeviceClass::kRobot: return "Robot";
    case DeviceClass::kUnknown: return "Unknown";
  }
  return "Unknown";
}

AgentInfo parse_user_agent(std::string_view ua) {
  AgentInfo info;
  if (util::trim(ua).empty()) return info;

  // Non-browser device classes first: their strings often *also* contain
  // browser engine tokens ("Safari" appears in nearly everything WebKit).
  if (contains(ua, "PlayStation") || contains(ua, "Xbox") ||
      contains(ua, "Nintendo")) {
    info.device = DeviceClass::kConsole;
    return info;
  }
  if (contains(ua, "SmartTV") || contains(ua, "SMART-TV") ||
      contains(ua, "AppleTV") || contains(ua, "GoogleTV") ||
      contains(ua, "HbbTV")) {
    info.device = DeviceClass::kSmartTv;
    return info;
  }
  if (contains(ua, "bot") || contains(ua, "spider") ||
      contains(ua, "crawler") || contains(ua, "curl/") ||
      contains(ua, "wget") || contains(ua, "Microsoft-CryptoAPI") ||
      contains(ua, "Windows-Update-Agent") || contains(ua, "Valve/Steam") ||
      contains(ua, "iTunes/") || contains(ua, "WindowsMediaPlayer") ||
      contains(ua, "VLC/")) {
    info.device = DeviceClass::kRobot;
    return info;
  }
  // App-embedded agents (in-app webviews, SDK fetchers).
  if (contains(ua, "Dalvik/") || contains(ua, "okhttp") ||
      contains(ua, "CFNetwork") || contains(ua, "FBAN") ||
      contains(ua, "Instagram") || contains(ua, "GameCenter") ||
      contains(ua, "AppSDK")) {
    info.device = DeviceClass::kApp;
    return info;
  }

  const bool mobile = contains(ua, "Mobile") || contains(ua, "Android") ||
                      contains(ua, "iPhone") || contains(ua, "iPad") ||
                      contains(ua, "Windows Phone");
  info.device = mobile ? DeviceClass::kMobile : DeviceClass::kDesktop;

  // Family detection ordered from most to least specific token.
  if (contains(ua, "Trident/") || contains(ua, "MSIE")) {
    info.family = BrowserFamily::kInternetExplorer;
    info.major_version = version_after(ua, "MSIE ");
    if (info.major_version == 0) info.major_version = version_after(ua, "rv:");
    return info;
  }
  if (contains(ua, "Firefox/")) {
    info.family = BrowserFamily::kFirefox;
    info.major_version = version_after(ua, "Firefox/");
    return info;
  }
  if (contains(ua, "Edge/") || contains(ua, "OPR/") ||
      contains(ua, "Opera")) {
    info.family = BrowserFamily::kOther;
    return info;
  }
  if (contains(ua, "Chrome/") || contains(ua, "CriOS/")) {
    info.family = BrowserFamily::kChrome;
    info.major_version = version_after(ua, "Chrome/");
    if (info.major_version == 0) {
      info.major_version = version_after(ua, "CriOS/");
    }
    return info;
  }
  if (contains(ua, "Safari/") && contains(ua, "AppleWebKit")) {
    info.family = BrowserFamily::kSafari;
    info.major_version = version_after(ua, "Version/");
    return info;
  }
  info.family = BrowserFamily::kNone;
  info.device = DeviceClass::kUnknown;
  return info;
}

}  // namespace adscope::ua
