// SnapshotTree — the in-memory time/shard/aggregate hierarchy of sealed
// study snapshots.
//
// The serving data model behind /query (ugreg's datatree shape, grown
// over StudySnapshots instead of raw JSON):
//
//   UTC time bucket ──▶ shard ──▶ leaf StudySnapshot
//        │                          (one sealed (bucket, shard) study,
//        │                           copied out at seal time)
//        └─ named aggregates (summary/traffic/users/infra) are virtual:
//           resolved at query time by merging the selected leaves and
//           rendering the requested view.
//
// Feeding: LiveStudy's on_seal hook (and `adscope query` offline) calls
// ingest() the moment a bucket study is finish()ed; the tree owns an
// independent copy, so queries over history keep working after the
// live ring evicts its buckets. Retention is the tree's own knob
// (retention_buckets) — the memory budget for served history.
//
// Epoch: a monotone counter bumped on every mutation (ingest or
// eviction). Response caching and ETags key on it: equal epoch (plus
// equal live ingest counters) implies byte-identical responses.
//
// Materialized rollups: cross-window aggregations that would be
// expensive to merge on demand are maintained incrementally on ingest —
// per-UTC-day user rollups (daily indicator-class ECDFs) and the
// cumulative infrastructure rollup (AS rankings since store start,
// deliberately unaffected by retention).
//
// Thread safety: all methods are safe from any thread (one mutex; leaf
// merges happen outside hot ingest paths — seals are rare relative to
// records).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/study_snapshot.h"
#include "util/annotations.h"

namespace adscope::store {

struct SnapshotTreeOptions {
  /// Aggregate shapes for leaf snapshots; must match the studies fed in.
  core::StudyOptions study;
  /// Width of one time bucket (same clock as the feeding LiveStudy).
  std::uint64_t bucket_seconds = 300;
  /// Distinct time buckets retained; older buckets (every shard leaf)
  /// are evicted when a new bucket pushes the count past this. 0 =
  /// unbounded.
  std::uint64_t retention_buckets = 0;
};

class SnapshotTree {
 public:
  explicit SnapshotTree(SnapshotTreeOptions options);

  SnapshotTree(const SnapshotTree&) = delete;
  SnapshotTree& operator=(const SnapshotTree&) = delete;

  /// Copies the sealed study into the (bucket, shard) leaf and updates
  /// the materialized rollups. Called from shard workers (under the
  /// LiveStudy shard lock) — must stay callback-safe: no calls back
  /// into the live layer.
  void ingest(std::uint64_t bucket_id, std::size_t shard,
              const core::TraceStudy& study);

  /// Merge every retained leaf with bucket id in [min_bucket,
  /// max_bucket], optionally restricted to one shard. Always returns a
  /// snapshot (zero aggregates when nothing matches), stamped with
  /// bucket_seconds; the caller stamps the live ingest counters.
  core::StudySnapshot merge(std::uint64_t min_bucket,
                            std::uint64_t max_bucket,
                            std::optional<std::size_t> shard) const;

  /// Materialized per-day users rollup (day = days since epoch, UTC).
  std::optional<core::StudySnapshot> users_daily(std::uint64_t day) const;
  /// Days with a materialized users rollup, ascending.
  std::vector<std::uint64_t> users_daily_days() const;
  /// Cumulative infra rollup since store start (ignores retention).
  core::StudySnapshot infra_cumulative() const;

  // -- observability ---------------------------------------------------
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }
  std::uint64_t bucket_seconds() const noexcept {
    return options_.bucket_seconds;
  }
  std::uint64_t retention_buckets() const noexcept {
    return options_.retention_buckets;
  }
  /// (bucket, shard) leaves currently held.
  std::size_t leaf_count() const;
  /// Distinct time buckets currently held.
  std::size_t bucket_count() const;
  std::uint64_t leaves_ingested() const noexcept {
    return leaves_ingested_.load(std::memory_order_relaxed);
  }
  std::uint64_t buckets_evicted() const noexcept {
    return buckets_evicted_.load(std::memory_order_relaxed);
  }
  /// Oldest/newest retained bucket id; nullopt when empty.
  std::optional<std::uint64_t> min_bucket() const;
  std::optional<std::uint64_t> max_bucket() const;

  struct BucketInfo {
    std::uint64_t id = 0;
    std::size_t shards = 0;
    std::uint64_t records = 0;  // HTTP requests + TLS flows in the bucket
  };
  /// Per-bucket index for /query/buckets, ascending by id.
  std::vector<BucketInfo> index() const;

 private:
  using ShardMap = std::map<std::size_t, core::StudySnapshot>;

  core::StudySnapshot make_snapshot_locked() const
      ADSCOPE_REQUIRES(mutex_);
  void bump_epoch() noexcept {
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  SnapshotTreeOptions options_;

  mutable util::Mutex mutex_;
  std::map<std::uint64_t, ShardMap> buckets_ ADSCOPE_GUARDED_BY(mutex_);
  /// Meta of the first ingested study — the aggregate shape for merged
  /// snapshots (one trace world per tree).
  trace::TraceMeta meta_ ADSCOPE_GUARDED_BY(mutex_);
  bool meta_set_ ADSCOPE_GUARDED_BY(mutex_) = false;
  /// Materialized rollups, maintained incrementally on ingest.
  std::map<std::uint64_t, core::StudySnapshot> users_daily_
      ADSCOPE_GUARDED_BY(mutex_);
  std::optional<core::StudySnapshot> infra_cumulative_
      ADSCOPE_GUARDED_BY(mutex_);

  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> leaves_ingested_{0};
  std::atomic<std::uint64_t> buckets_evicted_{0};
};

}  // namespace adscope::store
