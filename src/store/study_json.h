// JSON renderers for study snapshots (schemas: docs/FORMAT.md).
//
// Each function turns an owned core::StudySnapshot into one
// self-contained JSON document: the same numbers core/report.h prints
// as text, plus the window metadata (buckets merged, watermark, drop
// counts) that only exists for time-bucketed aggregation. Kept separate
// from the text renderers so the serving layer has a stable
// machine-readable schema while the human report stays free to change
// wording. Both the legacy /study/* routes and the /query path engine
// render through these — that shared code path is what makes the
// query-vs-legacy byte-identity tests meaningful.
#pragma once

#include <cstddef>
#include <string>

#include "core/study_snapshot.h"
#include "netdb/asn_db.h"

namespace adscope::store {

/// Headline counts: traffic totals, ad shares, user classes A-D,
/// page views — the "what is the ad ratio right now" answer.
std::string summary_json(const core::StudySnapshot& snapshot);

/// §7-style detail: list attribution, content-type table, the binned
/// request/byte time series and the per-class object-size histograms.
std::string traffic_json(const core::StudySnapshot& snapshot);

/// §6-style detail: indicator classes with per-family EasyList-ratio
/// ECDF deciles and the configuration estimates.
std::string users_json(const core::StudySnapshot& snapshot);

/// §8-style detail: server counts, dedicated ad servers and the top-N
/// AS ranking (needs the routing table; pass null to omit the ranking).
std::string infra_json(const core::StudySnapshot& snapshot,
                       const netdb::AsnDatabase* asn_db,
                       std::size_t top_n = 10);

}  // namespace adscope::store
