#include "store/study_json.h"

#include <array>

#include "core/inference.h"
#include "core/report.h"
#include "stats/json.h"

namespace adscope::store {

namespace {

using stats::JsonWriter;

double share(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(whole);
}

void write_window(JsonWriter& json, const core::StudySnapshot& snapshot) {
  json.key("window").begin_object();
  json.field("bucket_seconds", snapshot.bucket_seconds);
  json.field("buckets_merged", snapshot.buckets_merged());
  if (snapshot.buckets_merged() > 0) {
    json.field("first_bucket", snapshot.first_bucket());
    json.field("last_bucket", snapshot.last_bucket());
  }
  json.field("watermark_ms", snapshot.watermark_ms);
  json.field("records_ingested", snapshot.records_ingested);
  json.field("records_dropped", snapshot.records_dropped);
  json.end_object();
}

void write_trace(JsonWriter& json, const core::StudySnapshot& snapshot) {
  const auto& meta = snapshot.meta();
  json.key("trace").begin_object();
  json.field("name", meta.name);
  json.field("start_unix_s", meta.start_unix_s);
  json.field("duration_s", meta.duration_s);
  json.field("subscribers", static_cast<std::uint64_t>(meta.subscribers));
  json.end_object();
}

void write_classes(JsonWriter& json, const core::InferenceResult& inference) {
  json.key("classes").begin_object();
  const double active = static_cast<double>(inference.active_browsers.size());
  for (std::size_t c = 0; c < inference.classes.size(); ++c) {
    const auto& row = inference.classes[c];
    const char name[2] = {
        core::to_char(static_cast<core::IndicatorClass>(c)), '\0'};
    json.key(name).begin_object();
    json.field("instances", row.instances);
    json.field("requests", row.requests);
    json.field("ad_requests", row.ad_requests);
    json.field("active_share",
               active == 0 ? 0.0 : static_cast<double>(row.instances) / active);
    json.field("ad_request_share",
               share(row.ad_requests, inference.trace_ad_requests));
    json.end_object();
  }
  json.end_object();
}

}  // namespace

std::string summary_json(const core::StudySnapshot& snapshot) {
  const auto view = snapshot.view();
  const auto inference = view.inference();
  const auto& traffic = *view.traffic;
  const auto ads = traffic.ad_requests();

  JsonWriter json;
  json.begin_object();
  write_trace(json, snapshot);
  write_window(json, snapshot);

  json.key("traffic").begin_object();
  json.field("requests", traffic.requests());
  json.field("bytes", traffic.bytes());
  json.field("ad_requests", ads);
  json.field("ad_bytes", traffic.ad_bytes());
  json.field("ad_request_share", share(ads, traffic.requests()));
  json.field("ad_byte_share", share(traffic.ad_bytes(), traffic.bytes()));
  json.field("https_flows", view.https_flows);
  json.end_object();

  json.key("users").begin_object();
  json.field("households",
             static_cast<std::uint64_t>(view.users->household_count()));
  json.field("abp_households",
             static_cast<std::uint64_t>(view.users->abp_household_count()));
  json.field("pairs_total", static_cast<std::uint64_t>(inference.pairs_total));
  json.field("browsers_total",
             static_cast<std::uint64_t>(inference.browsers_total));
  json.field("active_browsers",
             static_cast<std::uint64_t>(inference.active_browsers.size()));
  json.field("abp_share", inference.abp_share());
  write_classes(json, inference);
  json.end_object();

  json.key("page_views").begin_object();
  json.field("views", view.page_views->views);
  json.field("objects_per_view", view.page_views->objects_per_view());
  json.field("ads_per_view", view.page_views->ads_per_view());
  json.end_object();

  json.end_object();
  return json.str();
}

std::string traffic_json(const core::StudySnapshot& snapshot) {
  const auto view = snapshot.view();
  const auto& traffic = *view.traffic;
  const auto ads = traffic.ad_requests();

  JsonWriter json;
  json.begin_object();
  write_trace(json, snapshot);
  write_window(json, snapshot);

  json.key("totals").begin_object();
  json.field("requests", traffic.requests());
  json.field("bytes", traffic.bytes());
  json.field("ad_requests", ads);
  json.field("ad_bytes", traffic.ad_bytes());
  json.end_object();

  json.key("list_attribution").begin_object();
  json.field("easylist_share", share(traffic.easylist_requests(), ads));
  json.field("easyprivacy_share", share(traffic.easyprivacy_requests(), ads));
  json.field("whitelist_share", share(traffic.whitelisted_requests(), ads));
  json.end_object();

  json.key("content_types").begin_array();
  for (const auto& [mime, row] : traffic.content_table()) {
    json.begin_object();
    json.field("mime", mime);
    json.field("ad_requests", row.ad_requests);
    json.field("ad_bytes", row.ad_bytes);
    json.field("non_ad_requests", row.non_ad_requests);
    json.field("non_ad_bytes", row.non_ad_bytes);
    json.end_object();
  }
  json.end_array();

  const auto& series = traffic.series();
  json.key("timeseries").begin_object();
  json.field("bin_seconds", series.bin_seconds());
  json.field("bins", static_cast<std::uint64_t>(series.bin_count()));
  json.key("series").begin_array();
  for (std::size_t s = 0; s < series.series_count(); ++s) {
    json.begin_object();
    json.field("name", series.name(s));
    json.key("values").begin_array();
    for (std::size_t b = 0; b < series.bin_count(); ++b) {
      json.value(series.value(s, b));
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();

  constexpr std::array kClasses = {
      http::ContentClass::kImage, http::ContentClass::kText,
      http::ContentClass::kVideo, http::ContentClass::kApplication,
      http::ContentClass::kOther};
  json.key("object_sizes").begin_array();
  for (const auto cls : kClasses) {
    const auto& ad = traffic.ad_sizes(cls);
    const auto& non_ad = traffic.non_ad_sizes(cls);
    json.begin_object();
    json.field("class", to_string(cls));
    json.field("ad_objects", ad.total());
    json.field("non_ad_objects", non_ad.total());
    json.key("bin_lo_bytes").begin_array();
    for (std::size_t b = 0; b < ad.bin_count(); ++b) json.value(ad.bin_lo(b));
    json.end_array();
    json.key("ad_counts").begin_array();
    for (std::size_t b = 0; b < ad.bin_count(); ++b) json.value(ad.count(b));
    json.end_array();
    json.key("non_ad_counts").begin_array();
    for (std::size_t b = 0; b < non_ad.bin_count(); ++b) {
      json.value(non_ad.count(b));
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();

  json.end_object();
  return json.str();
}

std::string users_json(const core::StudySnapshot& snapshot) {
  const auto view = snapshot.view();
  const auto inference = view.inference();
  const auto configurations = view.configurations(inference);

  JsonWriter json;
  json.begin_object();
  write_trace(json, snapshot);
  write_window(json, snapshot);

  json.field("pairs_total", static_cast<std::uint64_t>(inference.pairs_total));
  json.field("browsers_total",
             static_cast<std::uint64_t>(inference.browsers_total));
  json.field("active_browsers",
             static_cast<std::uint64_t>(inference.active_browsers.size()));
  json.field("abp_share", inference.abp_share());
  json.field("households",
             static_cast<std::uint64_t>(view.users->household_count()));
  json.field("abp_households",
             static_cast<std::uint64_t>(view.users->abp_household_count()));
  write_classes(json, inference);

  // Figure 4 as deciles: per-family ECDF of the EasyList ad ratio (%).
  json.key("family_easylist_ratio_deciles").begin_object();
  for (const auto& [family, ecdf] : inference.family_ecdf) {
    if (ecdf.empty()) continue;
    json.key(to_string(family)).begin_array();
    for (int d = 0; d <= 10; ++d) {
      json.value(ecdf.value_at(static_cast<double>(d) / 10.0));
    }
    json.end_array();
  }
  json.end_object();

  json.key("configurations").begin_object();
  json.field("abp_zero_easyprivacy_share", configurations.abp_zero_ep_share);
  json.field("non_abp_zero_easyprivacy_share",
             configurations.non_abp_zero_ep_share);
  json.field("abp_zero_acceptable_ads_share", configurations.abp_zero_aa_share);
  json.field("non_abp_zero_acceptable_ads_share",
             configurations.non_abp_zero_aa_share);
  json.field("whitelisted_from_abp_users",
             configurations.whitelisted_from_abp_users);
  json.field("whitelisted_from_non_abp_users",
             configurations.whitelisted_from_non_abp_users);
  json.end_object();

  json.end_object();
  return json.str();
}

std::string infra_json(const core::StudySnapshot& snapshot,
                       const netdb::AsnDatabase* asn_db, std::size_t top_n) {
  const auto view = snapshot.view();
  const auto& infra = *view.infra;

  JsonWriter json;
  json.begin_object();
  write_trace(json, snapshot);
  write_window(json, snapshot);

  json.field("servers", static_cast<std::uint64_t>(infra.server_count()));
  json.field("ad_serving_servers",
             static_cast<std::uint64_t>(infra.ad_serving_server_count()));
  const auto dedicated = infra.dedicated_ad_servers();
  json.key("dedicated_ad_servers").begin_object();
  json.field("servers", static_cast<std::uint64_t>(dedicated.servers));
  json.field("ads", dedicated.ads);
  json.field("ad_share_of_trace", dedicated.ad_share_of_trace);
  json.end_object();

  const auto& rtb = *view.rtb;
  json.key("rtb").begin_object();
  json.field("ad_share_in_rtb_regime", rtb.ad_share_in_rtb_regime());
  json.field("non_ad_share_in_rtb_regime", rtb.non_ad_share_in_rtb_regime());
  json.end_object();

  json.key("top_ases").begin_array();
  if (asn_db != nullptr) {
    const auto total_ads = infra.total_ads();
    for (const auto& row : infra.as_ranking(*asn_db, top_n)) {
      json.begin_object();
      json.field("as_number", static_cast<std::uint64_t>(row.as_number));
      json.field("name", row.name);
      json.field("ad_requests", row.ad_requests);
      json.field("total_requests", row.total_requests);
      json.field("share_of_ads", share(row.ad_requests, total_ads));
      json.end_object();
    }
  }
  json.end_array();

  json.end_object();
  return json.str();
}

}  // namespace adscope::store
