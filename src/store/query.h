// Query path & parameter grammar for the snapshot store.
//
// A query target names an aggregate, a time slice, and optionally a
// shard, plus rendering parameters (full grammar: docs/QUERY.md):
//
//   /query/<aggregate>/<time>[/<shard>][?params]
//
//   aggregate  summary | traffic | users | infra
//   time       *                       every retained bucket
//              latest                  newest retained bucket only
//              @N | @A..@B             raw bucket ids (inclusive range)
//              2026-08-07T08:00[:SS]   UTC instant -> containing bucket
//              <instant>..<instant>    inclusive range of buckets
//   shard      * (default) | decimal shard id
//   params     window_s=N  top=N  fields=a,b,c
//
//   /query/rollup/users-daily/<YYYY-MM-DD | *>   materialized rollups
//   /query/rollup/infra-cumulative
//   /query/buckets                               store index
//
// Parsing is strict and total: anything the grammar does not accept
// yields a QueryError carrying the HTTP status (404 for unknown path
// segments, 400 for malformed selectors/parameters), a message, and
// the offending parameter name — the serving layer renders that as a
// structured JSON error body instead of silently defaulting. The
// window_s parser here is also what the legacy /study routes use, so
// the 400/404 semantics are uniform across the whole HTTP surface.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace adscope::store {

/// Parse failure: HTTP status (400 or 404), a human message, and the
/// parameter/segment that caused it ("" when positional).
struct QueryError {
  int status = 400;
  std::string message;
  std::string param;
};

/// Rendering parameters, shared by /query and the legacy /study routes.
struct QueryParams {
  /// Trailing window in seconds; 0 = absent (whole retained range).
  std::uint64_t window_s = 0;
  /// Row cap for ranked tables (today: infra's AS ranking). SIZE_MAX =
  /// absent, use the serving default.
  std::size_t top = SIZE_MAX;
  /// Top-level fields of the rendered document to keep; empty = all.
  std::vector<std::string> fields;

  bool has_top() const noexcept { return top != SIZE_MAX; }
};

/// Parses the query string (the part after '?', '&'-separated). Known
/// keys are validated strictly (non-numeric, empty, zero or overflowing
/// values are errors); unknown keys are ignored per HTTP convention.
/// Returns false and fills `error` on the first invalid parameter.
bool parse_params(std::string_view query, QueryParams& params,
                  QueryError& error);

struct QuerySpec {
  enum class Aggregate {
    kSummary,
    kTraffic,
    kUsers,
    kInfra,
    kRollupUsersDaily,
    kRollupInfraCumulative,
    kBuckets,
  };

  Aggregate aggregate = Aggregate::kSummary;
  /// Bucket-id range, inclusive; [0, UINT64_MAX] = every bucket.
  std::uint64_t min_bucket = 0;
  std::uint64_t max_bucket = UINT64_MAX;
  /// "latest": resolve max retained bucket at serve time.
  bool latest_only = false;
  /// Shard filter; nullopt = merge every shard.
  std::optional<std::size_t> shard;
  /// Day index (days since epoch, UTC) for users-daily; nullopt = list
  /// the available days.
  std::optional<std::uint64_t> day;
  QueryParams params;
};

/// Parses a full "/query/..." request target (path + optional query
/// string). `bucket_seconds` converts time instants to bucket ids.
/// Returns false and fills `error` on malformed input: unknown
/// aggregate/rollup names are 404s, malformed selectors and parameters
/// are 400s.
bool parse_query(std::string_view target, std::uint64_t bucket_seconds,
                 QuerySpec& spec, QueryError& error);

// -- calendar helpers (UTC, no timezone dependency) -----------------------

/// Days since 1970-01-01 of a civil date (proleptic Gregorian).
std::int64_t days_from_civil(std::int64_t year, unsigned month, unsigned day);

/// "YYYY-MM-DD" -> days since epoch; rejects impossible dates.
std::optional<std::int64_t> parse_civil_date(std::string_view text);

/// "YYYY-MM-DDTHH:MM[:SS]" (also bare "YYYY-MM-DD") -> UTC seconds.
std::optional<std::uint64_t> parse_utc_instant(std::string_view text);

/// UTC seconds -> "YYYY-MM-DDTHH:MM:SS" (for the /query/buckets index).
std::string format_utc(std::uint64_t unix_s);

/// Days since epoch -> "YYYY-MM-DD".
std::string format_civil_date(std::uint64_t day_index);

}  // namespace adscope::store
