#include "store/snapshot_tree.h"

namespace adscope::store {

SnapshotTree::SnapshotTree(SnapshotTreeOptions options)
    : options_(std::move(options)) {
  if (options_.bucket_seconds == 0) options_.bucket_seconds = 1;
}

core::StudySnapshot SnapshotTree::make_snapshot_locked() const {
  core::StudySnapshot snapshot(meta_, options_.study);
  snapshot.bucket_seconds = options_.bucket_seconds;
  return snapshot;
}

void SnapshotTree::ingest(std::uint64_t bucket_id, std::size_t shard,
                          const core::TraceStudy& study) {
  util::MutexLock lock(mutex_);
  if (!meta_set_) {
    meta_ = study.meta();
    meta_set_ = true;
  }

  // Leaf: an owned copy of the sealed study's aggregates.
  core::StudySnapshot leaf(meta_, options_.study);
  leaf.bucket_seconds = options_.bucket_seconds;
  leaf.absorb(study);
  leaf.note_bucket(bucket_id);

  // Materialized rollups first (they must see evicted buckets too, and
  // the leaf is about to be moved into the tree).
  const auto day = bucket_id * options_.bucket_seconds / 86400;
  if (auto it = users_daily_.find(day); it != users_daily_.end()) {
    it->second.merge(leaf);
  } else {
    core::StudySnapshot rollup = make_snapshot_locked();
    rollup.merge(leaf);
    users_daily_.emplace(day, std::move(rollup));
  }
  if (infra_cumulative_.has_value()) {
    infra_cumulative_->merge(leaf);
  } else {
    core::StudySnapshot rollup = make_snapshot_locked();
    rollup.merge(leaf);
    infra_cumulative_.emplace(std::move(rollup));
  }

  buckets_[bucket_id].insert_or_assign(shard, std::move(leaf));
  leaves_ingested_.fetch_add(1, std::memory_order_relaxed);

  // Retention: the newest insert pays for evicting the oldest buckets.
  if (options_.retention_buckets > 0) {
    while (buckets_.size() > options_.retention_buckets) {
      buckets_.erase(buckets_.begin());
      buckets_evicted_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  bump_epoch();
}

core::StudySnapshot SnapshotTree::merge(
    std::uint64_t min_bucket, std::uint64_t max_bucket,
    std::optional<std::size_t> shard) const {
  util::MutexLock lock(mutex_);
  core::StudySnapshot merged = make_snapshot_locked();
  // Bucket-major, shard-minor: every aggregate's merge() is commutative
  // and associative (the PR-1 merge-law property tests), so this order
  // renders byte-identically to LiveStudy::snapshot()'s shard-major
  // walk — the invariant the /query-vs-/study identity tests pin.
  for (auto it = buckets_.lower_bound(min_bucket); it != buckets_.end();
       ++it) {
    if (it->first > max_bucket) break;
    for (const auto& [shard_id, leaf] : it->second) {
      if (shard.has_value() && shard_id != *shard) continue;
      merged.merge(leaf);
      merged.note_bucket(it->first);
    }
  }
  return merged;
}

std::optional<core::StudySnapshot> SnapshotTree::users_daily(
    std::uint64_t day) const {
  util::MutexLock lock(mutex_);
  const auto it = users_daily_.find(day);
  if (it == users_daily_.end()) return std::nullopt;
  core::StudySnapshot copy = make_snapshot_locked();
  copy.merge(it->second);
  return copy;
}

std::vector<std::uint64_t> SnapshotTree::users_daily_days() const {
  util::MutexLock lock(mutex_);
  std::vector<std::uint64_t> days;
  days.reserve(users_daily_.size());
  for (const auto& [day, rollup] : users_daily_) days.push_back(day);
  return days;
}

core::StudySnapshot SnapshotTree::infra_cumulative() const {
  util::MutexLock lock(mutex_);
  core::StudySnapshot copy = make_snapshot_locked();
  if (infra_cumulative_.has_value()) copy.merge(*infra_cumulative_);
  return copy;
}

std::size_t SnapshotTree::leaf_count() const {
  util::MutexLock lock(mutex_);
  std::size_t count = 0;
  for (const auto& [id, shards] : buckets_) count += shards.size();
  return count;
}

std::size_t SnapshotTree::bucket_count() const {
  util::MutexLock lock(mutex_);
  return buckets_.size();
}

std::optional<std::uint64_t> SnapshotTree::min_bucket() const {
  util::MutexLock lock(mutex_);
  if (buckets_.empty()) return std::nullopt;
  return buckets_.begin()->first;
}

std::optional<std::uint64_t> SnapshotTree::max_bucket() const {
  util::MutexLock lock(mutex_);
  if (buckets_.empty()) return std::nullopt;
  return buckets_.rbegin()->first;
}

std::vector<SnapshotTree::BucketInfo> SnapshotTree::index() const {
  util::MutexLock lock(mutex_);
  std::vector<BucketInfo> info;
  info.reserve(buckets_.size());
  for (const auto& [id, shards] : buckets_) {
    BucketInfo row;
    row.id = id;
    row.shards = shards.size();
    for (const auto& [shard_id, leaf] : shards) {
      row.records += leaf.view().traffic->requests() + leaf.https_flows();
    }
    info.push_back(row);
  }
  return info;
}

}  // namespace adscope::store
