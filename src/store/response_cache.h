// ResponseCache — sharded LRU cache of rendered query responses.
//
// Keyed by the full response identity: canonical request path + params
// + the store's state fingerprint (tree epoch and live ingest
// counters). A key therefore never goes stale — new data changes the
// fingerprint and old entries simply age out through LRU eviction, so
// there is no invalidation path to get wrong.
//
// Sharding: the key hash picks a shard; each shard has its own mutex,
// LRU list, and byte budget, so concurrent readers on different shards
// never contend. Hit/miss/eviction counters feed /metrics.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/annotations.h"

namespace adscope::store {

struct ResponseCacheOptions {
  /// Total byte budget across shards (key + body bytes). 0 disables
  /// caching entirely: get() always misses, put() is a no-op.
  std::size_t capacity_bytes = 8u << 20;
  /// Power-of-two shard count. 1 gives a single global LRU order —
  /// what the eviction-order unit tests use.
  std::size_t shards = 8;
};

struct ResponseCacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
};

class ResponseCache {
 public:
  explicit ResponseCache(ResponseCacheOptions options);

  ResponseCache(const ResponseCache&) = delete;
  ResponseCache& operator=(const ResponseCache&) = delete;

  /// Looks `key` up, copies the cached body into `body` on a hit and
  /// promotes the entry to most-recently-used. Returns true on hit.
  bool get(const std::string& key, std::string& body);

  /// Inserts (or refreshes) `key` → `body`, evicting least-recently-used
  /// entries from the shard until it fits its budget. An entry larger
  /// than one shard's budget is not cached.
  void put(const std::string& key, const std::string& body);

  /// Drops every entry (counters are kept).
  void clear();

  ResponseCacheCounters counters() const;
  std::size_t capacity_bytes() const noexcept {
    return options_.capacity_bytes;
  }

 private:
  struct Entry {
    std::string key;
    std::string body;
  };
  struct Shard {
    util::Mutex mutex;
    /// Front = most recently used.
    std::list<Entry> lru ADSCOPE_GUARDED_BY(mutex);
    std::unordered_map<std::string, std::list<Entry>::iterator> by_key
        ADSCOPE_GUARDED_BY(mutex);
    std::size_t bytes ADSCOPE_GUARDED_BY(mutex) = 0;
  };

  Shard& shard_for(const std::string& key);
  static std::size_t entry_bytes(const Entry& entry) noexcept {
    return entry.key.size() + entry.body.size();
  }

  ResponseCacheOptions options_;
  std::size_t shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace adscope::store
