#include "store/response_cache.h"

#include <functional>

namespace adscope::store {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ResponseCache::ResponseCache(ResponseCacheOptions options)
    : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  options_.shards = round_up_pow2(options_.shards);
  shard_budget_ = options_.capacity_bytes / options_.shards;
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResponseCache::Shard& ResponseCache::shard_for(const std::string& key) {
  const auto hash = std::hash<std::string>{}(key);
  return *shards_[hash & (shards_.size() - 1)];
}

bool ResponseCache::get(const std::string& key, std::string& body) {
  if (options_.capacity_bytes == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mutex);
  const auto it = shard.by_key.find(key);
  if (it == shard.by_key.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  body = it->second->body;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResponseCache::put(const std::string& key, const std::string& body) {
  if (options_.capacity_bytes == 0) return;
  const std::size_t cost = key.size() + body.size();
  if (cost > shard_budget_) return;

  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mutex);
  if (const auto it = shard.by_key.find(key); it != shard.by_key.end()) {
    shard.bytes -= entry_bytes(*it->second);
    it->second->body = body;
    shard.bytes += entry_bytes(*it->second);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, body});
  shard.by_key.emplace(key, shard.lru.begin());
  shard.bytes += cost;
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= entry_bytes(victim);
    shard.by_key.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ResponseCache::clear() {
  for (auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    shard->lru.clear();
    shard->by_key.clear();
    shard->bytes = 0;
  }
}

ResponseCacheCounters ResponseCache::counters() const {
  ResponseCacheCounters counters;
  counters.hits = hits_.load(std::memory_order_relaxed);
  counters.misses = misses_.load(std::memory_order_relaxed);
  counters.evictions = evictions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    counters.entries += shard->by_key.size();
    counters.bytes += shard->bytes;
  }
  return counters;
}

}  // namespace adscope::store
