#include "store/store_service.h"

#include <utility>

#include "stats/json.h"
#include "stats/json_filter.h"
#include "store/study_json.h"

namespace adscope::store {

std::string error_json(const QueryError& error) {
  stats::JsonWriter json;
  json.begin_object();
  json.key("error").begin_object();
  json.field("status", static_cast<std::int64_t>(error.status));
  json.field("message", error.message);
  if (!error.param.empty()) json.field("param", error.param);
  json.end_object();
  json.end_object();
  return json.str();
}

namespace {

StoreService::Response error_response(const QueryError& error) {
  return {error.status, "application/json", error_json(error), ""};
}

std::string fingerprint_of(std::uint64_t epoch, const LiveStats& live) {
  std::string fp = "e";
  fp += std::to_string(epoch);
  fp += "-w";
  fp += std::to_string(live.watermark_ms);
  fp += "-i";
  fp += std::to_string(live.records_ingested);
  fp += "-d";
  fp += std::to_string(live.records_dropped);
  return fp;
}

}  // namespace

StoreService::StoreService(StoreServiceOptions options,
                           const netdb::AsnDatabase* asn_db)
    : options_(options),
      asn_db_(asn_db),
      tree_(options.tree),
      cache_(options.cache) {}

LiveStats StoreService::live_stats_now() const {
  if (live_stats_) return live_stats_();
  // Offline / unwired: anchor trailing windows on the newest leaf.
  LiveStats stats;
  stats.current_bucket = tree_.max_bucket().value_or(0);
  return stats;
}

std::string StoreService::state_fingerprint() const {
  return fingerprint_of(tree_.epoch(), live_stats_now());
}

StoreService::Response StoreService::query(std::string_view target) {
  const auto live = live_stats_now();
  const std::string fingerprint = fingerprint_of(tree_.epoch(), live);

  std::string etag = "\"";
  etag += fingerprint;
  etag += "\"";

  std::string key;
  key.reserve(target.size() + fingerprint.size() + 1);
  key.append(target);
  key.push_back('#');
  key.append(fingerprint);

  Response response;
  if (cache_.get(key, response.body)) {
    response.etag = std::move(etag);
    return response;
  }

  QuerySpec spec;
  QueryError error;
  if (!parse_query(target, tree_.bucket_seconds(), spec, error)) {
    return error_response(error);
  }

  response = render(spec, live);
  if (response.status == 200) {
    response.etag = std::move(etag);
    cache_.put(key, response.body);
  }
  return response;
}

StoreService::Response StoreService::render(const QuerySpec& spec,
                                            const LiveStats& live) const {
  using Aggregate = QuerySpec::Aggregate;

  if (spec.aggregate == Aggregate::kBuckets) return render_buckets();
  if (spec.aggregate == Aggregate::kRollupUsersDaily && !spec.day) {
    return render_days();
  }

  const std::size_t top =
      spec.params.has_top() ? spec.params.top : options_.top_ases;

  core::StudySnapshot snapshot = [&] {
    switch (spec.aggregate) {
      case Aggregate::kRollupUsersDaily:
        if (auto rollup = tree_.users_daily(*spec.day)) {
          return std::move(*rollup);
        }
        return tree_.merge(1, 0, std::nullopt);  // empty, resolved below
      case Aggregate::kRollupInfraCumulative:
        return tree_.infra_cumulative();
      default: {
        std::uint64_t min_bucket = spec.min_bucket;
        std::uint64_t max_bucket = spec.max_bucket;
        if (spec.latest_only) {
          const auto newest = tree_.max_bucket();
          min_bucket = newest.value_or(1);
          max_bucket = newest.value_or(0);
        } else if (spec.params.window_s > 0) {
          // Trailing window anchored on the live watermark bucket —
          // the exact math of LiveStudy::snapshot_window, so /query
          // and /study agree on which buckets a window covers.
          const auto span =
              (spec.params.window_s + tree_.bucket_seconds() - 1) /
              tree_.bucket_seconds();
          min_bucket =
              live.current_bucket >= span ? live.current_bucket - span + 1 : 0;
          max_bucket = UINT64_MAX;
        }
        return tree_.merge(min_bucket, max_bucket, spec.shard);
      }
    }
  }();

  if (spec.aggregate == Aggregate::kRollupUsersDaily &&
      snapshot.buckets_merged() == 0) {
    return error_response(
        {404, "no users-daily rollup for " + format_civil_date(*spec.day),
         "day"});
  }

  snapshot.watermark_ms = live.watermark_ms;
  snapshot.records_ingested = live.records_ingested;
  snapshot.records_dropped = live.records_dropped;

  std::string body;
  switch (spec.aggregate) {
    case Aggregate::kSummary:
      body = summary_json(snapshot);
      break;
    case Aggregate::kTraffic:
      body = traffic_json(snapshot);
      break;
    case Aggregate::kUsers:
    case Aggregate::kRollupUsersDaily:
      body = users_json(snapshot);
      break;
    case Aggregate::kInfra:
    case Aggregate::kRollupInfraCumulative:
      body = infra_json(snapshot, asn_db_, top);
      break;
    case Aggregate::kBuckets:
      break;  // handled above
  }

  if (!spec.params.fields.empty()) {
    std::string filtered;
    std::vector<std::string> missing;
    if (!stats::filter_top_level_fields(body, spec.params.fields, filtered,
                                        missing)) {
      return error_response({500, "rendered document is not an object", ""});
    }
    if (!missing.empty()) {
      std::string message = "unknown field";
      if (missing.size() > 1) message += 's';
      message += ": ";
      for (std::size_t i = 0; i < missing.size(); ++i) {
        if (i > 0) message += ", ";
        message += missing[i];
      }
      return error_response({400, std::move(message), "fields"});
    }
    body = std::move(filtered);
  }

  return {200, "application/json", std::move(body), ""};
}

StoreService::Response StoreService::render_buckets() const {
  stats::JsonWriter json;
  json.begin_object();
  json.field("bucket_seconds", tree_.bucket_seconds());
  json.field("epoch", tree_.epoch());
  json.field("buckets_retained",
             static_cast<std::uint64_t>(tree_.bucket_count()));
  json.field("buckets_evicted", tree_.buckets_evicted());
  json.key("buckets").begin_array();
  for (const auto& info : tree_.index()) {
    json.begin_object();
    json.field("id", info.id);
    json.field("start", format_utc(info.id * tree_.bucket_seconds()));
    json.field("start_unix_s", info.id * tree_.bucket_seconds());
    json.field("shards", static_cast<std::uint64_t>(info.shards));
    json.field("records", info.records);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return {200, "application/json", json.str(), ""};
}

StoreService::Response StoreService::render_days() const {
  stats::JsonWriter json;
  json.begin_object();
  json.key("days").begin_array();
  for (const auto day : tree_.users_daily_days()) {
    json.begin_object();
    json.field("day", format_civil_date(day));
    json.field("path", "/query/rollup/users-daily/" + format_civil_date(day));
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return {200, "application/json", json.str(), ""};
}

}  // namespace adscope::store
