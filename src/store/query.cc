#include "store/query.h"

#include <charconv>
#include <cstdio>

namespace adscope::store {

namespace {

/// Strict decimal u64: the whole string must be digits, no sign, no
/// leading '+', value must fit. (std::from_chars already rejects "-";
/// overflow comes back as errc::result_out_of_range.)
bool parse_u64_strict(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && end == text.data() + text.size();
}

bool fail(QueryError& error, int status, std::string message,
          std::string param = "") {
  error.status = status;
  error.message = std::move(message);
  error.param = std::move(param);
  return false;
}

/// Fixed-width decimal field of exactly `width` digits.
bool parse_fixed(std::string_view text, std::size_t at, std::size_t width,
                 unsigned& out) {
  if (at + width > text.size()) return false;
  out = 0;
  for (std::size_t i = 0; i < width; ++i) {
    const char c = text[at + i];
    if (c < '0' || c > '9') return false;
    out = out * 10 + static_cast<unsigned>(c - '0');
  }
  return true;
}

constexpr unsigned kDaysInMonth[12] = {31, 28, 31, 30, 31, 30,
                                       31, 31, 30, 31, 30, 31};

bool is_leap(std::int64_t year) {
  return year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
}

/// Time selector token -> inclusive bucket range endpoint. `end_of`
/// selects the closing bucket for instants (an instant names one
/// bucket, so both endpoints are its containing bucket).
bool parse_time_point(std::string_view token, std::uint64_t bucket_seconds,
                      std::uint64_t& bucket, QueryError& error) {
  if (token.size() >= 2 && token[0] == '@') {
    if (!parse_u64_strict(token.substr(1), bucket)) {
      return fail(error, 400,
                  "malformed bucket id '" + std::string(token) +
                      "' (expected @<decimal>)",
                  "time");
    }
    return true;
  }
  const auto instant = parse_utc_instant(token);
  if (!instant.has_value()) {
    return fail(error, 400,
                "malformed time '" + std::string(token) +
                    "' (expected *, latest, @<bucket>, YYYY-MM-DD or "
                    "YYYY-MM-DDTHH:MM[:SS], optionally as A..B)",
                "time");
  }
  bucket = *instant / bucket_seconds;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Calendar

std::int64_t days_from_civil(std::int64_t year, unsigned month, unsigned day) {
  // Howard Hinnant's algorithm, days since 1970-01-01.
  year -= month <= 2;
  const std::int64_t era = (year >= 0 ? year : year - 399) / 400;
  const auto yoe = static_cast<unsigned>(year - era * 400);  // [0, 399]
  const unsigned doy =
      (153 * (month > 2 ? month - 3 : month + 9) + 2) / 5 + day - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

std::optional<std::int64_t> parse_civil_date(std::string_view text) {
  unsigned year = 0;
  unsigned month = 0;
  unsigned day = 0;
  if (text.size() != 10 || text[4] != '-' || text[7] != '-' ||
      !parse_fixed(text, 0, 4, year) || !parse_fixed(text, 5, 2, month) ||
      !parse_fixed(text, 8, 2, day)) {
    return std::nullopt;
  }
  if (month < 1 || month > 12 || day < 1) return std::nullopt;
  unsigned days = kDaysInMonth[month - 1];
  if (month == 2 && is_leap(year)) days = 29;
  if (day > days) return std::nullopt;
  return days_from_civil(year, month, day);
}

std::optional<std::uint64_t> parse_utc_instant(std::string_view text) {
  const auto date_part = text.substr(0, 10);
  const auto days = parse_civil_date(date_part);
  if (!days.has_value() || *days < 0) return std::nullopt;
  std::uint64_t seconds = static_cast<std::uint64_t>(*days) * 86400;
  if (text.size() == 10) return seconds;

  unsigned hour = 0;
  unsigned minute = 0;
  unsigned second = 0;
  if (text.size() < 16 || text[10] != 'T' || text[13] != ':' ||
      !parse_fixed(text, 11, 2, hour) || !parse_fixed(text, 14, 2, minute)) {
    return std::nullopt;
  }
  if (text.size() == 19) {
    if (text[16] != ':' || !parse_fixed(text, 17, 2, second)) {
      return std::nullopt;
    }
  } else if (text.size() != 16) {
    return std::nullopt;
  }
  if (hour > 23 || minute > 59 || second > 59) return std::nullopt;
  return seconds + hour * 3600 + minute * 60 + second;
}

std::string format_utc(std::uint64_t unix_s) {
  // Inverse of days_from_civil (Hinnant's civil_from_days).
  const auto days = static_cast<std::int64_t>(unix_s / 86400);
  const auto rest = unix_s % 86400;
  const std::int64_t z = days + 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const auto doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t year_base = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned day = doy - (153 * mp + 2) / 5 + 1;
  const unsigned month = mp < 10 ? mp + 3 : mp - 9;
  const std::int64_t year = year_base + (month <= 2);

  char out[48];
  std::snprintf(out, sizeof(out), "%04lld-%02u-%02uT%02llu:%02llu:%02llu",
                static_cast<long long>(year), month, day,
                static_cast<unsigned long long>(rest / 3600),
                static_cast<unsigned long long>(rest / 60 % 60),
                static_cast<unsigned long long>(rest % 60));
  return out;
}

std::string format_civil_date(std::uint64_t day_index) {
  return format_utc(day_index * 86400).substr(0, 10);
}

// ---------------------------------------------------------------------------
// Parameters

bool parse_params(std::string_view query, QueryParams& params,
                  QueryError& error) {
  while (!query.empty()) {
    const auto amp = query.find('&');
    const auto pair = query.substr(0, amp);
    const auto eq = pair.find('=');
    const auto key = pair.substr(0, eq);
    const auto value =
        eq == std::string_view::npos ? std::string_view{} : pair.substr(eq + 1);

    if (key == "window_s") {
      if (!parse_u64_strict(value, params.window_s) || params.window_s == 0) {
        return fail(error, 400,
                    "window_s must be a positive integer (seconds)",
                    "window_s");
      }
    } else if (key == "top") {
      std::uint64_t top = 0;
      if (!parse_u64_strict(value, top) || top > SIZE_MAX - 1) {
        return fail(error, 400, "top must be a non-negative integer", "top");
      }
      params.top = static_cast<std::size_t>(top);
    } else if (key == "fields") {
      params.fields.clear();
      std::string_view rest = value;
      while (true) {
        const auto comma = rest.find(',');
        const auto field = rest.substr(0, comma);
        if (field.empty()) {
          return fail(error, 400,
                      "fields must be a non-empty comma-separated list",
                      "fields");
        }
        for (const char c : field) {
          const bool word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '_';
          if (!word) {
            return fail(error, 400,
                        "fields entries may contain only [A-Za-z0-9_]",
                        "fields");
          }
        }
        params.fields.emplace_back(field);
        if (comma == std::string_view::npos) break;
        rest.remove_prefix(comma + 1);
      }
    }
    // Unknown keys: ignored (HTTP convention, forward compatibility).

    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Path

bool parse_query(std::string_view target, std::uint64_t bucket_seconds,
                 QuerySpec& spec, QueryError& error) {
  if (bucket_seconds == 0) bucket_seconds = 1;
  std::string_view path = target;
  std::string_view query;
  if (const auto at = target.find('?'); at != std::string_view::npos) {
    path = target.substr(0, at);
    query = target.substr(at + 1);
  }
  if (!parse_params(query, spec.params, error)) return false;

  constexpr std::string_view kPrefix = "/query/";
  if (path.substr(0, kPrefix.size()) != kPrefix) {
    return fail(error, 404, "no such route");
  }
  path.remove_prefix(kPrefix.size());

  // Split the remaining path on '/'.
  std::vector<std::string_view> segments;
  while (!path.empty()) {
    const auto slash = path.find('/');
    segments.push_back(path.substr(0, slash));
    if (slash == std::string_view::npos) break;
    path.remove_prefix(slash + 1);
  }
  if (segments.empty() || segments[0].empty()) {
    return fail(error, 404,
                "missing aggregate (expected summary, traffic, users, infra, "
                "rollup or buckets)");
  }

  const auto head = segments[0];
  if (head == "buckets") {
    if (segments.size() != 1) {
      return fail(error, 404, "buckets takes no further path segments");
    }
    spec.aggregate = QuerySpec::Aggregate::kBuckets;
    return true;
  }

  if (head == "rollup") {
    if (segments.size() < 2) {
      return fail(error, 404,
                  "missing rollup name (expected users-daily or "
                  "infra-cumulative)");
    }
    const auto name = segments[1];
    if (name == "infra-cumulative") {
      if (segments.size() != 2) {
        return fail(error, 404, "infra-cumulative takes no day segment");
      }
      spec.aggregate = QuerySpec::Aggregate::kRollupInfraCumulative;
      return true;
    }
    if (name == "users-daily") {
      spec.aggregate = QuerySpec::Aggregate::kRollupUsersDaily;
      if (segments.size() == 2) return true;  // list available days
      if (segments.size() != 3) {
        return fail(error, 404, "users-daily takes at most one day segment");
      }
      if (segments[2] == "*") return true;
      const auto day = parse_civil_date(segments[2]);
      if (!day.has_value() || *day < 0) {
        return fail(error, 400,
                    "malformed day '" + std::string(segments[2]) +
                        "' (expected YYYY-MM-DD or *)",
                    "day");
      }
      spec.day = static_cast<std::uint64_t>(*day);
      return true;
    }
    return fail(error, 404,
                "unknown rollup '" + std::string(name) +
                    "' (expected users-daily or infra-cumulative)");
  }

  if (head == "summary") {
    spec.aggregate = QuerySpec::Aggregate::kSummary;
  } else if (head == "traffic") {
    spec.aggregate = QuerySpec::Aggregate::kTraffic;
  } else if (head == "users") {
    spec.aggregate = QuerySpec::Aggregate::kUsers;
  } else if (head == "infra") {
    spec.aggregate = QuerySpec::Aggregate::kInfra;
  } else {
    return fail(error, 404,
                "unknown aggregate '" + std::string(head) +
                    "' (expected summary, traffic, users, infra, rollup or "
                    "buckets)");
  }

  if (segments.size() > 3) {
    return fail(error, 404, "too many path segments (max: "
                            "/query/<aggregate>/<time>/<shard>)");
  }

  // Time selector (defaults to '*').
  const auto time = segments.size() >= 2 ? segments[1] : std::string_view("*");
  if (time.empty()) {
    return fail(error, 400, "empty time selector", "time");
  }
  if (time == "*") {
    // keep the full range
  } else if (time == "latest") {
    spec.latest_only = true;
  } else if (const auto dots = time.find(".."); dots != std::string_view::npos) {
    if (!parse_time_point(time.substr(0, dots), bucket_seconds,
                          spec.min_bucket, error) ||
        !parse_time_point(time.substr(dots + 2), bucket_seconds,
                          spec.max_bucket, error)) {
      return false;
    }
    if (spec.min_bucket > spec.max_bucket) {
      return fail(error, 400, "time range start is after its end", "time");
    }
  } else {
    if (!parse_time_point(time, bucket_seconds, spec.min_bucket, error)) {
      return false;
    }
    spec.max_bucket = spec.min_bucket;
  }

  // Shard selector (defaults to '*').
  if (segments.size() == 3 && segments[2] != "*") {
    std::uint64_t shard = 0;
    if (!parse_u64_strict(segments[2], shard) || shard > SIZE_MAX) {
      return fail(error, 400,
                  "malformed shard '" + std::string(segments[2]) +
                      "' (expected * or a decimal shard id)",
                  "shard");
    }
    spec.shard = static_cast<std::size_t>(shard);
  }

  if (spec.params.window_s != 0 &&
      (spec.latest_only || spec.max_bucket != UINT64_MAX ||
       spec.min_bucket != 0)) {
    return fail(error, 400,
                "window_s combines only with the '*' time selector",
                "window_s");
  }
  return true;
}

}  // namespace adscope::store
