// StoreService — the query engine over a SnapshotTree.
//
// One object owns the pieces of the serving pipeline:
//
//   request target ─▶ parse (query.h) ─▶ resolve (tree merge / rollup)
//        │                                   │
//        └── response cache ◀── render (study_json + json_filter) ◀──┘
//
// The HTTP endpoint and the offline `adscope query` CLI both call
// query() with a raw "/query/..." target and get back status, body and
// the entity tag — neither owns any query logic, so wire responses and
// CLI output are identical by construction.
//
// State fingerprint: the tree epoch plus the live ingest counters
// (watermark, ingested, dropped — they appear in every rendered window
// block, so two responses are byte-identical iff the fingerprint
// matches). The fingerprint keys the response cache and becomes the
// ETag; set_live_stats() wires the provider (the daemon passes the
// LiveStudy's counters, offline replay its final totals).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "netdb/asn_db.h"
#include "store/query.h"
#include "store/response_cache.h"
#include "store/snapshot_tree.h"

namespace adscope::store {

/// Live-ingest counters stamped into rendered window blocks; also part
/// of the response fingerprint.
struct LiveStats {
  std::uint64_t watermark_ms = 0;
  std::uint64_t records_ingested = 0;
  std::uint64_t records_dropped = 0;
  /// Bucket containing the watermark — the anchor for trailing
  /// window_s= queries (same math as LiveStudy::snapshot_window).
  std::uint64_t current_bucket = 0;
};
using LiveStatsFn = std::function<LiveStats()>;

struct StoreServiceOptions {
  SnapshotTreeOptions tree;
  ResponseCacheOptions cache;
  /// Default AS-ranking rows for infra views (overridden by ?top=N).
  std::size_t top_ases = 10;
};

/// `{"error":{"status":...,"message":...,"param":...}}` — the one
/// error-body shape every route (query and legacy) answers with.
std::string error_json(const QueryError& error);

class StoreService {
 public:
  /// `asn_db` (nullable) enables infra AS rankings; must outlive the
  /// service.
  explicit StoreService(StoreServiceOptions options,
                        const netdb::AsnDatabase* asn_db = nullptr);

  StoreService(const StoreService&) = delete;
  StoreService& operator=(const StoreService&) = delete;

  /// Wire the live counters provider. Must be set before serving; when
  /// unset, window blocks are stamped with zeros and window_s= anchors
  /// on the newest retained bucket.
  void set_live_stats(LiveStatsFn fn) { live_stats_ = std::move(fn); }

  struct Response {
    int status = 200;
    std::string content_type = "application/json";
    std::string body;
    /// Strong validator for 200s ("\"<fingerprint>\""); empty on errors.
    std::string etag;
  };

  /// Answer a full "/query/..." request target. Thread-safe; never
  /// throws on bad input — malformed requests come back as structured
  /// 400/404 JSON bodies.
  Response query(std::string_view target);

  /// Current response fingerprint (tree epoch + live counters). Equal
  /// fingerprints imply byte-identical responses for equal targets.
  std::string state_fingerprint() const;

  SnapshotTree& tree() noexcept { return tree_; }
  const SnapshotTree& tree() const noexcept { return tree_; }
  ResponseCacheCounters cache_counters() const { return cache_.counters(); }
  std::size_t cache_capacity_bytes() const noexcept {
    return cache_.capacity_bytes();
  }
  std::size_t top_ases() const noexcept { return options_.top_ases; }

 private:
  LiveStats live_stats_now() const;
  Response render(const QuerySpec& spec, const LiveStats& live) const;
  Response render_buckets() const;
  Response render_days() const;

  StoreServiceOptions options_;
  const netdb::AsnDatabase* asn_db_;
  SnapshotTree tree_;
  ResponseCache cache_;
  LiveStatsFn live_stats_;
};

}  // namespace adscope::store
