// Registrable-domain computation ("eTLD+1").
//
// Third-party determination in AdBlock filter semantics compares the
// registrable domain of the request host with that of the page host. We
// ship a compact built-in suffix set covering the TLDs that occur in the
// synthetic ecosystem plus the common multi-label suffixes; callers can
// extend it at runtime.
#pragma once

#include <string>
#include <string_view>
#include <unordered_set>

namespace adscope::http {

class PublicSuffixList {
 public:
  /// The built-in list (thread-safe to read; construct-on-first-use).
  static const PublicSuffixList& builtin();

  PublicSuffixList();

  /// Add a suffix such as "co.uk" (no leading dot).
  void add(std::string suffix);

  /// Longest matching public suffix of `host`, or the last label when no
  /// suffix is known (conservative default).
  std::string_view suffix_of(std::string_view host) const;

  /// Registrable domain: public suffix plus one label. Hosts that *are* a
  /// suffix, single-label hosts, and IP literals map to themselves.
  std::string_view registrable_domain(std::string_view host) const;

 private:
  std::unordered_set<std::string> suffixes_;
};

/// Convenience wrapper over the built-in list.
std::string_view registrable_domain(std::string_view host);

/// AdBlock "third-party" test: hosts with different registrable domains.
bool is_third_party(std::string_view request_host, std::string_view page_host);

/// True when `host` equals `domain` or is a subdomain of it.
bool host_matches_domain(std::string_view host, std::string_view domain);

}  // namespace adscope::http
