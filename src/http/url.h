// Minimal URL model for HTTP-header trace analysis.
//
// We deliberately implement only the subset of RFC 3986 that occurs in
// HTTP request lines, Referer/Location headers and AdBlock filter rules:
// scheme://host[:port]/path[?query][#fragment]. Scheme-relative ("//h/p")
// and origin-relative ("/p") references are resolved against a base URL,
// which is what the referrer-map reconstruction needs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace adscope::http {

class Url {
 public:
  Url() = default;

  /// Parse an absolute URL. Returns std::nullopt when there is no
  /// recognizable scheme+host. Host is lower-cased; default ports are
  /// normalized away.
  static std::optional<Url> parse(std::string_view raw);

  /// Build from a Host header plus a request-target ("/path?query").
  /// `https` selects the scheme. This is how transactions captured at the
  /// header level are re-assembled into URLs.
  static Url from_host_and_target(std::string_view host,
                                  std::string_view target,
                                  bool https = false);

  /// Resolve `reference` (absolute, scheme-relative, absolute-path or
  /// relative-path) against this URL. Mirrors browser Location handling.
  Url resolve(std::string_view reference) const;

  const std::string& scheme() const noexcept { return scheme_; }
  const std::string& host() const noexcept { return host_; }
  std::uint16_t port() const noexcept { return port_; }
  const std::string& path() const noexcept { return path_; }
  const std::string& query() const noexcept { return query_; }

  bool https() const noexcept { return scheme_ == "https"; }
  bool empty() const noexcept { return host_.empty(); }

  /// "host/path?query" without the scheme — the canonical form AdBlock
  /// filters match against after the "||" anchor.
  std::string host_and_path() const;

  /// Full spelling, e.g. "http://x.example/p?q=1".
  std::string spec() const;

  /// spec() into a caller-owned buffer, reusing its capacity.
  void spec_to(std::string& out) const;

  /// Path extension without the dot, lower-cased ("" when absent).
  std::string extension() const;

  /// Replace the query string.
  void set_query(std::string query) { query_ = std::move(query); }

  friend bool operator==(const Url& a, const Url& b) noexcept {
    return a.scheme_ == b.scheme_ && a.host_ == b.host_ &&
           a.port_ == b.port_ && a.path_ == b.path_ && a.query_ == b.query_;
  }

 private:
  std::string scheme_;
  std::string host_;
  std::uint16_t port_ = 0;  // 0 = scheme default
  std::string path_ = "/";
  std::string query_;
};

}  // namespace adscope::http
