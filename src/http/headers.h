// Case-insensitive HTTP header collection.
//
// Header traces carry a handful of fields per transaction; a flat vector
// with linear case-insensitive lookup beats a map at these sizes and keeps
// insertion order, which matters when re-serializing for tests.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace adscope::http {

class Headers {
 public:
  Headers() = default;

  void set(std::string name, std::string value);
  void append(std::string name, std::string value);

  /// First value for `name` (case-insensitive); nullopt when absent.
  std::optional<std::string_view> get(std::string_view name) const noexcept;

  /// Value or the empty string.
  std::string_view get_or_empty(std::string_view name) const noexcept;

  bool contains(std::string_view name) const noexcept;
  std::size_t size() const noexcept { return fields_.size(); }

  auto begin() const noexcept { return fields_.begin(); }
  auto end() const noexcept { return fields_.end(); }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace adscope::http
