#include "http/mime.h"

#include "util/strings.h"

namespace adscope::http {

std::string_view to_string(RequestType type) noexcept {
  switch (type) {
    case RequestType::kDocument: return "document";
    case RequestType::kSubdocument: return "subdocument";
    case RequestType::kStylesheet: return "stylesheet";
    case RequestType::kScript: return "script";
    case RequestType::kImage: return "image";
    case RequestType::kMedia: return "media";
    case RequestType::kFont: return "font";
    case RequestType::kObject: return "object";
    case RequestType::kXhr: return "xmlhttprequest";
    case RequestType::kOther: return "other";
  }
  return "other";
}

std::string_view to_string(ContentClass cls) noexcept {
  switch (cls) {
    case ContentClass::kImage: return "Image";
    case ContentClass::kText: return "Text";
    case ContentClass::kVideo: return "Video";
    case ContentClass::kApplication: return "App";
    case ContentClass::kOther: return "Other";
  }
  return "Other";
}

std::string canonical_mime(std::string_view content_type) {
  auto trimmed = util::trim(content_type);
  if (const auto semi = trimmed.find(';'); semi != std::string_view::npos) {
    trimmed = util::trim(trimmed.substr(0, semi));
  }
  return util::to_lower(trimmed);
}

RequestType type_from_mime(std::string_view mime) {
  using util::starts_with;
  if (mime.empty() || mime == "-") return RequestType::kOther;
  if (mime == "text/html" || mime == "application/xhtml+xml") {
    return RequestType::kDocument;
  }
  if (mime == "text/css") return RequestType::kStylesheet;
  if (mime == "application/javascript" || mime == "text/javascript" ||
      mime == "application/x-javascript" || mime == "application/ecmascript") {
    return RequestType::kScript;
  }
  if (starts_with(mime, "image/")) return RequestType::kImage;
  if (starts_with(mime, "video/") || starts_with(mime, "audio/")) {
    return RequestType::kMedia;
  }
  if (starts_with(mime, "font/") || mime == "application/font-woff" ||
      mime == "application/x-font-ttf") {
    return RequestType::kFont;
  }
  if (mime == "application/x-shockwave-flash") return RequestType::kObject;
  if (mime == "application/json" || mime == "application/xml" ||
      mime == "text/xml") {
    return RequestType::kXhr;
  }
  if (mime == "text/plain") return RequestType::kOther;
  return RequestType::kOther;
}

std::optional<RequestType> type_from_extension(std::string_view ext) {
  // The explicit table from §3.1 of the paper, plus the obvious modern
  // additions that the simulator emits.
  if (ext == "png" || ext == "gif" || ext == "jpg" || ext == "jpeg" ||
      ext == "svg" || ext == "ico" || ext == "webp") {
    return RequestType::kImage;
  }
  if (ext == "css") return RequestType::kStylesheet;
  if (ext == "js") return RequestType::kScript;
  if (ext == "mp4" || ext == "avi" || ext == "flv" || ext == "webm" ||
      ext == "mp3") {
    return RequestType::kMedia;
  }
  if (ext == "swf") return RequestType::kObject;
  if (ext == "woff" || ext == "woff2" || ext == "ttf") {
    return RequestType::kFont;
  }
  if (ext == "html" || ext == "htm") return RequestType::kDocument;
  return std::nullopt;
}

ContentClass class_from_mime(std::string_view mime) {
  using util::starts_with;
  if (starts_with(mime, "image/")) return ContentClass::kImage;
  if (starts_with(mime, "text/")) return ContentClass::kText;
  if (starts_with(mime, "video/")) return ContentClass::kVideo;
  if (starts_with(mime, "application/")) return ContentClass::kApplication;
  return ContentClass::kOther;
}

}  // namespace adscope::http
