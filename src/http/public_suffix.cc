#include "http/public_suffix.h"

#include "util/strings.h"

namespace adscope::http {

namespace {

bool looks_like_ipv4(std::string_view host) {
  int dots = 0;
  for (char c : host) {
    if (c == '.') {
      ++dots;
    } else if (!util::is_ascii_digit(c)) {
      return false;
    }
  }
  return dots == 3;
}

}  // namespace

PublicSuffixList::PublicSuffixList() {
  // Generic TLDs.
  for (const char* s :
       {"com", "net", "org", "info", "biz", "io", "tv", "me", "co",
        "example", "test", "invalid", "ads", "cloud", "app"}) {
    suffixes_.insert(s);
  }
  // Country TLDs seen in European residential traffic.
  for (const char* s : {"de", "uk", "fr", "es", "it", "nl", "pl", "ru",
                        "ch", "at", "eu", "us", "jp", "cn", "br"}) {
    suffixes_.insert(s);
  }
  // Common multi-label suffixes.
  for (const char* s : {"co.uk", "org.uk", "ac.uk", "com.br", "co.jp",
                        "com.cn", "co.de"}) {
    suffixes_.insert(s);
  }
}

const PublicSuffixList& PublicSuffixList::builtin() {
  static const PublicSuffixList instance;
  return instance;
}

void PublicSuffixList::add(std::string suffix) {
  suffixes_.insert(std::move(suffix));
}

std::string_view PublicSuffixList::suffix_of(std::string_view host) const {
  if (looks_like_ipv4(host)) return host;
  // Try progressively shorter suffixes: a.b.c -> "a.b.c", "b.c", "c".
  std::string_view candidate = host;
  for (;;) {
    if (suffixes_.contains(std::string(candidate))) return candidate;
    const auto dot = candidate.find('.');
    if (dot == std::string_view::npos) break;
    candidate = candidate.substr(dot + 1);
  }
  return candidate;  // last label
}

std::string_view PublicSuffixList::registrable_domain(
    std::string_view host) const {
  if (looks_like_ipv4(host)) return host;
  const auto suffix = suffix_of(host);
  if (suffix.size() == host.size()) return host;
  // One label above the suffix.
  const auto prefix = host.substr(0, host.size() - suffix.size() - 1);
  const auto dot = prefix.rfind('.');
  return dot == std::string_view::npos ? host : host.substr(dot + 1);
}

std::string_view registrable_domain(std::string_view host) {
  return PublicSuffixList::builtin().registrable_domain(host);
}

bool is_third_party(std::string_view request_host, std::string_view page_host) {
  if (request_host.empty() || page_host.empty()) return false;
  return registrable_domain(request_host) != registrable_domain(page_host);
}

bool host_matches_domain(std::string_view host, std::string_view domain) {
  if (domain.empty()) return false;
  if (host.size() == domain.size()) return util::iequals(host, domain);
  if (host.size() > domain.size() &&
      util::iequals(host.substr(host.size() - domain.size()), domain)) {
    return host[host.size() - domain.size() - 1] == '.';
  }
  return false;
}

}  // namespace adscope::http
