#include "http/url.h"

#include "util/strings.h"

namespace adscope::http {

namespace {

using util::ascii_lower;

bool valid_scheme(std::string_view s) {
  if (s.empty() || !util::is_ascii_alpha(s[0])) return false;
  for (char c : s) {
    if (!util::is_ascii_alnum(c) && c != '+' && c != '-' && c != '.') {
      return false;
    }
  }
  return true;
}

std::uint16_t default_port(std::string_view scheme) {
  if (scheme == "https") return 443;
  if (scheme == "http") return 80;
  return 0;
}

// Split "host[:port]" into pieces; returns false on a malformed port.
bool split_authority(std::string_view authority, std::string& host,
                     std::uint16_t& port, std::string_view scheme) {
  // Strip userinfo if present (rare in traces, but cheap to handle).
  if (const auto at = authority.rfind('@'); at != std::string_view::npos) {
    authority = authority.substr(at + 1);
  }
  std::string_view host_part = authority;
  std::uint64_t port_value = 0;
  if (const auto colon = authority.rfind(':'); colon != std::string_view::npos) {
    const auto port_str = authority.substr(colon + 1);
    if (!port_str.empty()) {
      if (!util::parse_u64(port_str, port_value) || port_value > 65535) {
        return false;
      }
      host_part = authority.substr(0, colon);
    }
  }
  if (host_part.empty()) return false;
  host = util::to_lower(host_part);
  auto p = static_cast<std::uint16_t>(port_value);
  if (p == default_port(scheme)) p = 0;
  port = p;
  return true;
}

}  // namespace

std::optional<Url> Url::parse(std::string_view raw) {
  raw = util::trim(raw);
  const auto scheme_end = raw.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0) {
    return std::nullopt;
  }
  Url url;
  const auto scheme = raw.substr(0, scheme_end);
  if (!valid_scheme(scheme)) return std::nullopt;
  url.scheme_ = util::to_lower(scheme);

  auto rest = raw.substr(scheme_end + 3);
  const auto path_start = rest.find_first_of("/?#");
  const auto authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  if (!split_authority(authority, url.host_, url.port_, url.scheme_)) {
    return std::nullopt;
  }
  if (path_start == std::string_view::npos) return url;

  rest = rest.substr(path_start);
  // Drop the fragment: it is never sent on the wire.
  if (const auto hash = rest.find('#'); hash != std::string_view::npos) {
    rest = rest.substr(0, hash);
  }
  if (const auto q = rest.find('?'); q != std::string_view::npos) {
    url.query_ = std::string(rest.substr(q + 1));
    rest = rest.substr(0, q);
  }
  url.path_ = rest.empty() ? "/" : std::string(rest);
  return url;
}

Url Url::from_host_and_target(std::string_view host, std::string_view target,
                              bool https) {
  Url url;
  url.scheme_ = https ? "https" : "http";
  std::uint16_t port = 0;
  if (!split_authority(util::trim(host), url.host_, port, url.scheme_)) {
    url.host_.clear();
    return url;
  }
  url.port_ = port;
  target = util::trim(target);
  if (const auto hash = target.find('#'); hash != std::string_view::npos) {
    target = target.substr(0, hash);
  }
  if (const auto q = target.find('?'); q != std::string_view::npos) {
    url.query_ = std::string(target.substr(q + 1));
    target = target.substr(0, q);
  }
  url.path_ = target.empty() ? "/" : std::string(target);
  if (url.path_[0] != '/') url.path_.insert(url.path_.begin(), '/');
  return url;
}

Url Url::resolve(std::string_view reference) const {
  reference = util::trim(reference);
  if (auto absolute = Url::parse(reference)) return *absolute;
  if (util::starts_with(reference, "//")) {
    if (auto schemeful = Url::parse(std::string(scheme_) + ":" +
                                    std::string(reference))) {
      return *schemeful;
    }
  }
  Url out = *this;
  out.query_.clear();
  if (reference.empty()) return out;
  if (reference[0] == '/') {
    if (const auto q = reference.find('?'); q != std::string_view::npos) {
      out.query_ = std::string(reference.substr(q + 1));
      reference = reference.substr(0, q);
    }
    out.path_ = std::string(reference);
    return out;
  }
  // Relative path: replace the last path segment.
  std::string_view ref_path = reference;
  if (const auto q = reference.find('?'); q != std::string_view::npos) {
    out.query_ = std::string(reference.substr(q + 1));
    ref_path = reference.substr(0, q);
  }
  const auto last_slash = out.path_.rfind('/');
  out.path_ = out.path_.substr(0, last_slash + 1) + std::string(ref_path);
  return out;
}

std::string Url::host_and_path() const {
  std::string out = host_;
  if (port_ != 0) {
    out += ':';
    out += std::to_string(port_);
  }
  out += path_;
  if (!query_.empty()) {
    out += '?';
    out += query_;
  }
  return out;
}

std::string Url::spec() const {
  std::string out;
  spec_to(out);
  return out;
}

void Url::spec_to(std::string& out) const {
  out.clear();
  if (empty()) return;
  out.append(scheme_);
  out.append("://");
  out.append(host_);
  if (port_ != 0) {
    out.push_back(':');
    out.append(std::to_string(port_));
  }
  out.append(path_);
  if (!query_.empty()) {
    out.push_back('?');
    out.append(query_);
  }
}

std::string Url::extension() const {
  const auto last_slash = path_.rfind('/');
  const auto last_dot = path_.rfind('.');
  if (last_dot == std::string::npos || last_dot < last_slash ||
      last_dot + 1 == path_.size()) {
    return {};
  }
  return util::to_lower(std::string_view(path_).substr(last_dot + 1));
}

}  // namespace adscope::http
