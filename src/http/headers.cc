#include "http/headers.h"

#include "util/strings.h"

namespace adscope::http {

void Headers::set(std::string name, std::string value) {
  for (auto& [existing, v] : fields_) {
    if (util::iequals(existing, name)) {
      v = std::move(value);
      return;
    }
  }
  fields_.emplace_back(std::move(name), std::move(value));
}

void Headers::append(std::string name, std::string value) {
  fields_.emplace_back(std::move(name), std::move(value));
}

std::optional<std::string_view> Headers::get(
    std::string_view name) const noexcept {
  for (const auto& [n, v] : fields_) {
    if (util::iequals(n, name)) return std::string_view(v);
  }
  return std::nullopt;
}

std::string_view Headers::get_or_empty(std::string_view name) const noexcept {
  const auto value = get(name);
  return value ? *value : std::string_view{};
}

bool Headers::contains(std::string_view name) const noexcept {
  return get(name).has_value();
}

}  // namespace adscope::http
