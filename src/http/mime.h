// Content-type taxonomy.
//
// Two views exist over the same MIME strings:
//  * RequestType — the AdBlock Plus request categories that `$`-options in
//    filter rules constrain (document, script, stylesheet, image, media,
//    object, ...). The paper's methodology (§3.1) infers this from the URL
//    extension first and falls back to the Content-Type header.
//  * ContentClass — the coarse grouping (image/text/video/application)
//    used by the traffic characterization in §7 (Table 4, Figure 6).
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace adscope::http {

/// AdBlock Plus content categories (subset relevant to header traces).
enum class RequestType : std::uint8_t {
  kDocument,     // main HTML document
  kSubdocument,  // iframe document
  kStylesheet,
  kScript,
  kImage,
  kMedia,   // audio/video
  kFont,
  kObject,  // flash & plugins
  kXhr,
  kOther,
};

/// Coarse classes for size/volume characterization (Figure 6).
enum class ContentClass : std::uint8_t {
  kImage,
  kText,
  kVideo,
  kApplication,
  kOther,
};

std::string_view to_string(RequestType type) noexcept;
std::string_view to_string(ContentClass cls) noexcept;

/// Strip MIME parameters: "text/html; charset=utf-8" -> "text/html",
/// lower-cased and trimmed.
std::string canonical_mime(std::string_view content_type);

/// Map a canonical MIME type to the AdBlock category. Unknown or empty
/// types map to kOther.
RequestType type_from_mime(std::string_view canonical_mime);

/// Map a URL path extension ("gif", "js", ...) to an AdBlock category.
/// Implements the paper's explicit extension table (§3.1); returns nullopt
/// for extensions outside it so callers fall back to the header.
std::optional<RequestType> type_from_extension(std::string_view extension);

/// Coarse class for §7 statistics; "-" (unknown) maps to kOther.
ContentClass class_from_mime(std::string_view canonical_mime);

}  // namespace adscope::http
