#include "analyzer/http_log.h"

#include <stdexcept>

#include "netdb/ipv4.h"

namespace adscope::analyzer {

std::string truncate_to_fqdn(const http::Url& url) {
  if (url.empty()) return {};
  return url.scheme() + "://" + url.host() + "/";
}

HttpLogWriter::HttpLogWriter(const std::string& path, Privacy privacy)
    : out_(path, std::ios::trunc), privacy_(privacy) {
  if (!out_) throw std::runtime_error("cannot open http log: " + path);
  out_ << "#fields\tts\tclient\tserver\tmethod_url\treferrer\t"
          "user_agent\tstatus\tcontent_type\tcontent_length\t"
          "tcp_handshake_us\thttp_handshake_us\n";
}

std::string HttpLogWriter::escape(std::string_view field) {
  if (field.empty()) return "-";
  std::string out;
  out.reserve(field.size());
  for (char c : field) {
    if (c == '\t' || c == '\n' || c == '\r') {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void HttpLogWriter::write(const WebObject& object) {
  const bool truncated = privacy_ == Privacy::kFqdnTruncated;
  const std::string url = truncated ? truncate_to_fqdn(object.url)
                                    : object.url.spec();
  std::string referrer = object.referer;
  if (truncated && !referrer.empty()) {
    if (const auto parsed = http::Url::parse(referrer)) {
      referrer = truncate_to_fqdn(*parsed);
    } else {
      referrer.clear();
    }
  }
  out_ << object.timestamp_ms / 1000 << '.' << object.timestamp_ms % 1000
       << '\t' << netdb::to_string(object.client_ip) << '\t'
       << netdb::to_string(object.server_ip) << '\t' << escape(url) << '\t'
       << escape(referrer) << '\t' << escape(object.user_agent) << '\t'
       << object.status_code << '\t' << escape(object.content_type) << '\t'
       << object.content_length << '\t' << object.tcp_handshake_us << '\t'
       << object.http_handshake_us << '\n';
  ++lines_;
}

}  // namespace adscope::analyzer
