// Bro-equivalent HTTP analyzer (§3.1, Figure 1 left box).
//
// Turns raw header-level trace records into the per-transaction "web
// object" log the classification pipeline consumes: Host + URI merged
// into an absolute URL, Referer, Content-Type (canonicalized),
// Content-Length, status, User-Agent — plus the paper's Bro extension:
// the Location response header, resolved to an absolute URL.
//
// Port-443 flows cannot be parsed; they are forwarded separately so the
// Adblock-Plus-server indicator (§3.2) can consume them.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "http/url.h"
#include "trace/record.h"

namespace adscope::analyzer {

/// One HTTP transaction after header extraction.
struct WebObject {
  std::uint64_t timestamp_ms = 0;
  netdb::IpV4 client_ip = 0;
  netdb::IpV4 server_ip = 0;
  std::uint16_t status_code = 200;

  http::Url url;            // absolute request URL
  std::string referer;      // raw Referer value ("" when absent)
  std::string user_agent;
  std::string content_type;  // canonical MIME ("" when absent)
  http::Url location;        // absolute redirect target (empty when none)
  std::uint64_t content_length = 0;

  std::uint32_t tcp_handshake_us = 0;
  std::uint32_t http_handshake_us = 0;

  /// Response body; empty in ordinary header-only captures (§5).
  std::string payload;

  bool is_redirect() const noexcept {
    return status_code >= 300 && status_code < 400 && !location.empty();
  }
};

/// TraceSink adapter: emits WebObjects and TLS flows through callbacks.
class HttpExtractor final : public trace::TraceSink {
 public:
  using ObjectCallback = std::function<void(const WebObject&)>;
  using TlsCallback = std::function<void(const trace::TlsFlow&)>;
  using MetaCallback = std::function<void(const trace::TraceMeta&)>;

  HttpExtractor() = default;

  void set_object_callback(ObjectCallback cb) { on_object_ = std::move(cb); }
  void set_tls_callback(TlsCallback cb) { on_tls_ = std::move(cb); }
  void set_meta_callback(MetaCallback cb) { on_meta_cb_ = std::move(cb); }

  void on_meta(const trace::TraceMeta& meta) override;
  void on_http(const trace::HttpTransaction& txn) override;
  void on_tls(const trace::TlsFlow& flow) override;

  std::uint64_t transactions() const noexcept { return transactions_; }
  std::uint64_t malformed() const noexcept { return malformed_; }

 private:
  ObjectCallback on_object_;
  TlsCallback on_tls_;
  MetaCallback on_meta_cb_;
  std::uint64_t transactions_ = 0;
  std::uint64_t malformed_ = 0;
};

}  // namespace adscope::analyzer
