// Bro-style HTTP transaction log with the paper's privacy post-pass.
//
// The paper's pipeline (§5) writes Bro http.log-like records and — once
// classification completes — truncates every URL to its fully qualified
// domain name, removing sensitive path/query content before the logs
// leave the secured infrastructure. HttpLogWriter reproduces both: the
// tab-separated log format and the anonymization mode.
#pragma once

#include <fstream>
#include <string>

#include "analyzer/http_extractor.h"

namespace adscope::analyzer {

/// Truncate a URL spec to scheme://fqdn/ (the §5 privacy measure).
std::string truncate_to_fqdn(const http::Url& url);

class HttpLogWriter {
 public:
  enum class Privacy : std::uint8_t {
    kFull,           // research use inside the secured enclave
    kFqdnTruncated,  // what may leave the enclave (§5)
  };

  /// Opens `path`; throws std::runtime_error on failure. Writes the
  /// header line immediately.
  HttpLogWriter(const std::string& path, Privacy privacy);

  /// Append one transaction.
  void write(const WebObject& object);

  std::uint64_t lines_written() const noexcept { return lines_; }

 private:
  static std::string escape(std::string_view field);

  std::ofstream out_;
  Privacy privacy_;
  std::uint64_t lines_ = 0;
};

}  // namespace adscope::analyzer
