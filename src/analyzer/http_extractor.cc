#include "analyzer/http_extractor.h"

#include "http/mime.h"

namespace adscope::analyzer {

void HttpExtractor::on_meta(const trace::TraceMeta& meta) {
  if (on_meta_cb_) on_meta_cb_(meta);
}

void HttpExtractor::on_http(const trace::HttpTransaction& txn) {
  ++transactions_;
  WebObject object;
  object.timestamp_ms = txn.timestamp_ms;
  object.client_ip = txn.client_ip;
  object.server_ip = txn.server_ip;
  object.status_code = txn.status_code;
  object.url = http::Url::from_host_and_target(txn.host, txn.uri,
                                               txn.server_port == 443);
  if (object.url.empty()) {
    ++malformed_;  // no usable Host header: Bro drops these too
    return;
  }
  object.referer = txn.referer;
  object.user_agent = txn.user_agent;
  object.content_type = http::canonical_mime(txn.content_type);
  if (!txn.location.empty()) {
    object.location = object.url.resolve(txn.location);
  }
  object.content_length = txn.content_length;
  object.tcp_handshake_us = txn.tcp_handshake_us;
  object.http_handshake_us = txn.http_handshake_us;
  object.payload = txn.payload;
  if (on_object_) on_object_(object);
}

void HttpExtractor::on_tls(const trace::TlsFlow& flow) {
  if (on_tls_) on_tls_(flow);
}

}  // namespace adscope::analyzer
