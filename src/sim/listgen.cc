#include "sim/listgen.h"

#include "http/public_suffix.h"
#include "util/strings.h"

namespace adscope::sim {

namespace {

bool is_german_company(const AdCompany& company) {
  return util::ends_with(company.domains.front(), ".de");
}

bool is_ad_role(CompanyRole role) {
  return role == CompanyRole::kAdNetwork || role == CompanyRole::kAdExchange;
}

bool is_tracker_role(CompanyRole role) {
  return role == CompanyRole::kTracker || role == CompanyRole::kAnalytics;
}

void header(std::string& out, std::string_view title, std::string_view expires,
            std::string_view version) {
  out += "[Adblock Plus 2.0]\n";
  out += "! Title: ";
  out += title;
  out += "\n! Expires: ";
  out += expires;
  out += "\n! Version: ";
  out += version;
  out += "\n! Homepage: https://adscope.example/lists\n!\n";
}

}  // namespace

GeneratedLists generate_lists(const Ecosystem& ecosystem) {
  GeneratedLists lists;

  // ---------------- EasyList ------------------------------------------
  std::string& el = lists.easylist;
  header(el, "EasyList (synthetic)", "4 days", "201504110000");
  // Generic path rules, as in the real list's "General blocking" section.
  el += "! --- general blocking rules ---\n";
  el += "/banners/*\n";
  el += "/adserver/\n";
  el += "/adframe.\n";
  el += "&ad_unit=\n";
  el += "?ad_format=\n";
  el += "_adbanner.\n";
  el += "/adclick?\n";
  el += "/impression?$image\n";
  el += "! --- third-party ad servers ---\n";
  for (const auto& company : ecosystem.companies()) {
    if (!is_ad_role(company.role)) continue;
    if (is_german_company(company)) continue;  // left to the derivative
    for (const auto& domain : company.domains) {
      el += "||" + domain + "^$third-party\n";
    }
    // Exchanges get an explicit RTB endpoint rule with a type option.
    if (company.role == CompanyRole::kAdExchange) {
      el += "||" + company.domains.front() +
            "/rtb/$xmlhttprequest,script,third-party\n";
    }
  }
  el += "! --- first-party ad platforms ---\n";
  for (const auto& publisher : ecosystem.publishers()) {
    if (publisher.own_ad_platform) {
      el += "||" + publisher.domain + "/ads/\n";
    }
  }
  // Exceptions inside EasyList: network quality/anti-fraud scripts that
  // the plugin must not block (the paper's false-positive mechanism:
  // these lose their $script protection when the Content-Type lies).
  el += "! --- exception rules ---\n";
  for (const auto& company : ecosystem.companies()) {
    if (company.role != CompanyRole::kAdNetwork) continue;
    if (is_german_company(company)) continue;
    el += "@@||" + company.domains.front() + "/q/check$script\n";
  }
  el += "@@*jsp?callback=aslHandleAds*\n";
  // Element-hiding rules (DOM-side; unusable on header traces but part
  // of a faithful list).
  el += "! --- element hiding ---\n";
  el += "##.ad-banner\n##.adsbox\n##.sponsored-link\n##div[id^=\"ad-\"]\n";
  for (const auto& publisher : ecosystem.publishers()) {
    if (publisher.rank < 40 && publisher.ad_slots > 0) {
      el += publisher.domain + "###ad-leaderboard\n";
    }
  }

  // ---------------- EasyList derivative (German customization) ---------
  std::string& de = lists.easylist_derivative;
  header(de, "EasyList Germany (synthetic)", "4 days", "201504110000");
  for (const auto& company : ecosystem.companies()) {
    if (!is_ad_role(company.role) || !is_german_company(company)) continue;
    for (const auto& domain : company.domains) {
      de += "||" + domain + "^$third-party\n";
    }
    if (company.role == CompanyRole::kAdNetwork) {
      de += "@@||" + company.domains.front() + "/q/check$script\n";
    }
  }
  de += "/werbung/banner\n";
  de += "##.werbung\n";

  // ---------------- EasyPrivacy ----------------------------------------
  std::string& ep = lists.easyprivacy;
  header(ep, "EasyPrivacy (synthetic)", "1 days", "201504110000");
  ep += "! --- tracking servers ---\n";
  for (const auto& company : ecosystem.companies()) {
    if (!is_tracker_role(company.role)) continue;
    for (const auto& domain : company.domains) {
      ep += "||" + domain + "^$third-party\n";
    }
  }
  ep += "! --- generic tracking endpoints ---\n";
  ep += "/pixel.gif?\n";
  ep += "/__utm.gif?\n";
  ep += "/collect?$image,xmlhttprequest\n";
  ep += "/beacon/\n";
  ep += "-tracking.js\n";
  ep += "/imp?price=\n";

  // ---------------- Acceptable ads ("non-intrusive") -------------------
  std::string& aa = lists.acceptable_ads;
  header(aa, "Allow non-intrusive advertising (synthetic)", "1 days",
         "201504110000");
  for (const auto& company : ecosystem.companies()) {
    if (!company.acceptable_ads) continue;
    if (company.role == CompanyRole::kCdn ||
        company.role == CompanyRole::kTracker ||
        company.role == CompanyRole::kAnalytics) {
      // Over-general whole-domain rules: the gstatic.com anomaly the
      // paper calls out (fonts whitelisted), and whitelisted trackers
      // whose requests EasyPrivacy would otherwise catch (§7.3).
      aa += "@@||" +
            std::string(http::registrable_domain(company.domains.front())) +
            "^\n";
    } else {
      // AA-compliant inventory lives under /aa/ on the network's domains.
      for (const auto& domain : company.domains) {
        aa += "@@||" + domain + "/aa/*\n";
      }
    }
  }
  for (const auto& publisher : ecosystem.publishers()) {
    if (publisher.own_ad_platform && publisher.acceptable_ads) {
      aa += "@@||" + publisher.domain + "/ads/$~third-party\n";
    }
  }
  // One page-level whitelisting rule to keep the $document path honest.
  if (!ecosystem.publishers().empty()) {
    for (const auto& publisher : ecosystem.publishers()) {
      if (publisher.category == SiteCategory::kSearch) {
        aa += "@@||" + publisher.domain + "^$document\n";
        break;
      }
    }
  }
  return lists;
}

adblock::FilterEngine make_engine(const GeneratedLists& lists,
                                  const ListSelection& selection) {
  using adblock::FilterList;
  using adblock::ListKind;
  adblock::FilterEngine engine;
  if (selection.easylist) {
    engine.add_list(FilterList::parse(lists.easylist, ListKind::kEasyList,
                                      "easylist"));
  }
  if (selection.derivative) {
    engine.add_list(FilterList::parse(lists.easylist_derivative,
                                      ListKind::kEasyListDerivative,
                                      "easylistgermany"));
  }
  if (selection.easyprivacy) {
    engine.add_list(FilterList::parse(lists.easyprivacy,
                                      ListKind::kEasyPrivacy, "easyprivacy"));
  }
  if (selection.acceptable_ads) {
    engine.add_list(FilterList::parse(lists.acceptable_ads,
                                      ListKind::kAcceptableAds,
                                      "exceptionrules"));
  }
  return engine;
}

void GhosteryDb::add(std::string domain, Category category) {
  entries_.emplace(std::move(domain), category);
}

bool GhosteryDb::blocks(std::string_view host,
                        const Selection& selection) const {
  // Suffix-match host labels against the database.
  std::string_view candidate = host;
  for (;;) {
    const auto it = entries_.find(std::string(candidate));
    if (it != entries_.end()) {
      switch (it->second) {
        case Category::kAdvertising: return selection.advertising;
        case Category::kAnalytics: return selection.analytics;
        case Category::kBeacon: return selection.beacons;
        case Category::kPrivacy: return selection.privacy;
      }
    }
    const auto dot = candidate.find('.');
    if (dot == std::string_view::npos) return false;
    candidate = candidate.substr(dot + 1);
  }
}

GhosteryDb build_ghostery_db(const Ecosystem& ecosystem) {
  GhosteryDb db;
  for (const auto& company : ecosystem.companies()) {
    if (!company.ghostery_known) continue;
    GhosteryDb::Category category = GhosteryDb::Category::kAdvertising;
    switch (company.role) {
      case CompanyRole::kAdNetwork:
      case CompanyRole::kAdExchange:
        category = GhosteryDb::Category::kAdvertising;
        break;
      case CompanyRole::kAnalytics:
        category = GhosteryDb::Category::kAnalytics;
        break;
      case CompanyRole::kTracker:
        category = GhosteryDb::Category::kBeacon;
        break;
      case CompanyRole::kCdn:
        continue;  // Ghostery does not list CDNs
    }
    for (const auto& domain : company.domains) {
      db.add(std::string(http::registrable_domain(domain)), category);
    }
  }
  return db;
}

}  // namespace adscope::sim
