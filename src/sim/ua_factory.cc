#include "sim/ua_factory.h"

#include <initializer_list>
#include <iterator>

namespace adscope::sim {

namespace {

const char* pick(util::Rng& rng, std::initializer_list<const char*> options) {
  auto it = options.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(rng.below(options.size())));
  return *it;
}

std::string windows_token(util::Rng& rng) {
  return pick(rng, {"Windows NT 6.1", "Windows NT 6.3", "Windows NT 10.0",
                    "Windows NT 6.1; WOW64", "Windows NT 6.3; WOW64"});
}

}  // namespace

std::string make_desktop_ua(ua::BrowserFamily family, util::Rng& rng) {
  switch (family) {
    case ua::BrowserFamily::kFirefox: {
      const int version = static_cast<int>(rng.range(31, 40));
      const std::string os =
          rng.chance(0.8) ? windows_token(rng)
                          : "X11; Linux x86_64";
      return "Mozilla/5.0 (" + os + "; rv:" + std::to_string(version) +
             ".0) Gecko/20100101 Firefox/" + std::to_string(version) + ".0";
    }
    case ua::BrowserFamily::kChrome: {
      const int version = static_cast<int>(rng.range(39, 45));
      return "Mozilla/5.0 (" + windows_token(rng) +
             ") AppleWebKit/537.36 (KHTML, like Gecko) Chrome/" +
             std::to_string(version) + ".0." +
             std::to_string(rng.range(2171, 2454)) + ".95 Safari/537.36";
    }
    case ua::BrowserFamily::kSafari: {
      const int minor = static_cast<int>(rng.range(0, 2));
      return std::string("Mozilla/5.0 (Macintosh; Intel Mac OS X 10_10_") +
             std::to_string(rng.range(1, 5)) +
             ") AppleWebKit/600.5.17 (KHTML, like Gecko) Version/8." +
             std::to_string(minor) + " Safari/600.5.17";
    }
    case ua::BrowserFamily::kInternetExplorer: {
      if (rng.chance(0.5)) {
        return "Mozilla/5.0 (" + windows_token(rng) +
               "; Trident/7.0; rv:11.0) like Gecko";
      }
      return "Mozilla/4.0 (compatible; MSIE 9.0; " + windows_token(rng) +
             "; Trident/5.0)";
    }
    default:
      return "Mozilla/5.0 (" + windows_token(rng) +
             ") AppleWebKit/537.36 (KHTML, like Gecko) Chrome/42.0.2311.90 "
             "Safari/537.36 OPR/29.0." +
             std::to_string(rng.range(1795, 1800)) + ".47";
  }
}

std::string make_mobile_ua(util::Rng& rng) {
  if (rng.chance(0.55)) {
    const int ios = static_cast<int>(rng.range(7, 9));
    return "Mozilla/5.0 (iPhone; CPU iPhone OS " + std::to_string(ios) +
           "_1 like Mac OS X) AppleWebKit/600.1.4 (KHTML, like Gecko) "
           "Version/" +
           std::to_string(ios) + ".0 Mobile/12B411 Safari/600.1.4";
  }
  const int android_minor = static_cast<int>(rng.range(0, 2));
  return "Mozilla/5.0 (Linux; Android 5." + std::to_string(android_minor) +
         "; SM-G90" + std::to_string(rng.range(0, 9)) +
         "F Build/LRX21T) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/" +
         std::to_string(rng.range(39, 43)) + ".0.2214.89 Mobile Safari/537.36";
}

std::string make_console_ua(util::Rng& rng) {
  return pick(rng,
              {"Mozilla/5.0 (PlayStation 4 2.51) AppleWebKit/537.73 (KHTML, "
               "like Gecko)",
               "Mozilla/5.0 (Windows NT 6.2; Trident/7.0; Xbox; Xbox One)",
               "Mozilla/5.0 (Nintendo WiiU) AppleWebKit/536.30 (KHTML, like "
               "Gecko) NX/3.0.4.2.12 NintendoBrowser/4.3.1.11264.US"});
}

std::string make_smarttv_ua(util::Rng& rng) {
  return pick(rng,
              {"Mozilla/5.0 (SMART-TV; Linux; Tizen 2.3) AppleWebKit/538.1 "
               "(KHTML, like Gecko) SamsungBrowser/1.0 TV Safari/538.1",
               "Mozilla/5.0 (Linux; GoogleTV 3.2) AppleWebKit/534.24 (KHTML, "
               "like Gecko) Chrome/11.0.696.77 Safari/534.24",
               "HbbTV/1.2.1 (;Panasonic;VIERA 2015;3.001;0071;)"});
}

std::string make_app_ua(util::Rng& rng) {
  return pick(
      rng, {"Dalvik/2.1.0 (Linux; U; Android 5.0.1; Nexus 5 Build/LRX22C)",
            "MobileGame/3.2.1 CFNetwork/711.3.18 Darwin/14.0.0",
            "okhttp/2.3.0", "WeatherApp/5.1 (Android 4.4.4; de_DE) AppSDK/2.0",
            "NewsReader/2.7 CFNetwork/711.1.16 Darwin/14.0.0"});
}

}  // namespace adscope::sim
