#include "sim/page_model.h"

#include <algorithm>

namespace adscope::sim {

namespace {

using http::RequestType;

std::string hex_token(util::Rng& rng, int chars) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(static_cast<std::size_t>(chars));
  for (int i = 0; i < chars; ++i) out.push_back(kHex[rng.below(16)]);
  return out;
}

std::string encode_url(std::string_view url) {
  std::string out;
  for (char c : url) {
    switch (c) {
      case ':': out += "%3A"; break;
      case '/': out += "%2F"; break;
      case '?': out += "%3F"; break;
      case '&': out += "%26"; break;
      case '=': out += "%3D"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

const char* page_path_stem(SiteCategory category) {
  switch (category) {
    case SiteCategory::kNews: return "/articles/story-";
    case SiteCategory::kVideo: return "/watch/v";
    case SiteCategory::kShopping: return "/product/p";
    case SiteCategory::kSocial: return "/profile/u";
    case SiteCategory::kSearch: return "/results?q=term";
    case SiteCategory::kAdult: return "/gallery/g";
    case SiteCategory::kFileSharing: return "/file/f";
    case SiteCategory::kTech: return "/review/r";
    case SiteCategory::kReference: return "/entry/e";
    case SiteCategory::kGames: return "/play/g";
  }
  return "/page/";
}

}  // namespace

PageModel::PageModel(const Ecosystem& ecosystem, PageModelOptions options)
    : ecosystem_(ecosystem),
      options_(options),
      gstatic_(ecosystem.company_by_name("GStatic")),
      google_apis_(ecosystem.company_by_name("GoogleApis")) {}

std::string PageModel::cdn_host_for(const Publisher& publisher) const {
  // Host name consistent with the AS the publisher's CDN IP lives in.
  const auto as_number = ecosystem_.asn_db().lookup(publisher.cdn_server);
  return ecosystem_.as_entry(as_number).name == "Akamai"
             ? "cache.akamaized-sim.net"
             : "fastcontent-sim.net";
}

int PageModel::push(PageLoad& page, SimRequest request) const {
  page.requests.push_back(std::move(request));
  return static_cast<int>(page.requests.size() - 1);
}

netdb::IpV4 PageModel::pick_server(const AdCompany& company,
                                   util::Rng& rng) const {
  return company.servers[rng.below(company.servers.size())];
}

void PageModel::maybe_corrupt_mime(SimRequest& request, util::Rng& rng) const {
  if (request.status >= 300) return;
  if (rng.chance(options_.missing_mime_rate)) {
    request.reported_mime.clear();
    return;
  }
  if (!rng.chance(options_.mime_mismatch_rate)) return;
  switch (request.true_type) {
    case RequestType::kScript:
      // The paper's dominant misclassification source (§4.2).
      request.reported_mime = rng.chance(0.7) ? "text/html" : "text/x-c";
      break;
    case RequestType::kImage:
      request.reported_mime = "text/plain";
      break;
    case RequestType::kXhr:
      request.reported_mime = "text/html";
      break;
    default:
      request.reported_mime = "text/plain";
      break;
  }
}

int PageModel::add_content_object(PageLoad& page, util::Rng& rng,
                                  const Publisher& publisher) const {
  SimRequest req;
  req.parent = 0;
  req.referer = page.page_url;
  req.offset_ms = page.requests[0].offset_ms + rng.exponential(250.0);
  req.intent = Intent::kContent;
  req.https = rng.chance(options_.https_object_share);

  const bool from_cdn = rng.chance(0.35);
  const std::string host = from_cdn ? cdn_host_for(publisher)
                                    : publisher.domain;
  req.server_ip = from_cdn ? publisher.cdn_server : publisher.server;
  req.as_number = from_cdn ? ecosystem_.asn_db().lookup(publisher.cdn_server)
                           : publisher.as_number;
  const std::string prefix =
      from_cdn ? "/static/" + publisher.domain + "/" : "/assets/";

  const double kind = rng.uniform();
  const bool video_site = publisher.category == SiteCategory::kVideo ||
                          publisher.category == SiteCategory::kFileSharing;
  if (video_site && kind < 0.50) {
    // Streaming chunk: large, often extensionless with no Content-Type.
    req.true_type = RequestType::kMedia;
    const bool extensionless = rng.chance(0.6);
    req.url = "http://" + host + prefix + "media/chunk" +
              std::to_string(rng.below(4096)) +
              (extensionless ? "?bytes=" + std::to_string(rng.below(1U << 20))
                             : ".mp4");
    req.reported_mime = extensionless && rng.chance(0.5) ? "" : "video/mp4";
    req.size = static_cast<std::uint64_t>(rng.lognormal(14.2, 0.7));  // ~1.5MB
  } else if (kind < 0.50) {
    req.true_type = RequestType::kImage;
    const bool jpeg = rng.chance(0.7);
    req.url = "http://" + host + prefix + "img/i" +
              std::to_string(rng.below(100000)) + (jpeg ? ".jpg" : ".png");
    req.reported_mime = jpeg ? "image/jpeg" : "image/png";
    req.size = static_cast<std::uint64_t>(rng.lognormal(9.6, 1.1));  // ~15KB
  } else if (kind < 0.65) {
    req.true_type = RequestType::kScript;
    req.url = "http://" + host + prefix + "js/app-" +
              std::to_string(rng.below(64)) + ".js";
    req.reported_mime = "application/javascript";
    req.size = static_cast<std::uint64_t>(rng.lognormal(9.9, 0.8));
  } else if (kind < 0.73) {
    req.true_type = RequestType::kStylesheet;
    req.url = "http://" + host + prefix + "css/site-" +
              std::to_string(rng.below(16)) + ".css";
    req.reported_mime = "text/css";
    req.size = static_cast<std::uint64_t>(rng.lognormal(9.2, 0.7));
  } else if (kind < 0.90) {
    // Interactive endpoints: small text/plain or JSON answers — the
    // paper notes non-ad text objects skew small (auto-completion).
    req.true_type = RequestType::kXhr;
    req.url = "http://" + publisher.domain + "/api/suggest?q=" +
              hex_token(rng, 4) + "&t=" + std::to_string(rng.below(1U << 30));
    req.server_ip = publisher.server;
    req.as_number = publisher.as_number;
    req.reported_mime = rng.chance(0.5) ? "text/plain" : "application/xml";
    req.size = static_cast<std::uint64_t>(rng.lognormal(5.5, 1.0));  // ~250B
  } else {
    // Follow-up HTML fragments / sub-pages.
    req.true_type = RequestType::kSubdocument;
    req.url = "http://" + publisher.domain + "/fragment/f" +
              std::to_string(rng.below(1000)) + ".html";
    req.server_ip = publisher.server;
    req.as_number = publisher.as_number;
    req.reported_mime = "text/html";
    req.size = static_cast<std::uint64_t>(rng.lognormal(7.5, 0.9));
  }
  maybe_corrupt_mime(req, rng);
  return push(page, std::move(req));
}

void PageModel::add_font(PageLoad& page, util::Rng& rng) const {
  if (gstatic_ == SIZE_MAX) return;
  const auto& company = ecosystem_.companies()[gstatic_];
  SimRequest req;
  req.parent = 0;
  req.referer = page.page_url;
  req.offset_ms = page.requests[0].offset_ms + rng.exponential(180.0);
  req.intent = Intent::kContent;  // fonts are NOT ads — yet AA-whitelisted
  req.true_type = RequestType::kFont;
  req.url = "http://fonts.gstaticsim.com/s/font" +
            std::to_string(rng.below(40)) + ".woff";
  req.reported_mime = "application/font-woff";
  req.size = static_cast<std::uint64_t>(rng.lognormal(10.2, 0.5));
  req.server_ip = pick_server(company, rng);
  req.as_number = company.as_number;
  req.company = gstatic_;
  push(page, std::move(req));
}

void PageModel::add_tracker(PageLoad& page, util::Rng& rng,
                            const Publisher& publisher) const {
  const auto company_index =
      publisher.tracker_partners[rng.below(publisher.tracker_partners.size())];
  const auto& company = ecosystem_.companies()[company_index];
  const auto& domain = company.domains.front();

  SimRequest req;
  req.parent = 0;
  req.referer = page.page_url;
  req.offset_ms = page.requests[0].offset_ms + rng.exponential(400.0);
  req.intent = Intent::kTracker;
  req.company = company_index;
  req.server_ip = pick_server(company, rng);
  req.as_number = company.as_number;

  if (company.role == CompanyRole::kAnalytics && rng.chance(0.5)) {
    // Analytics collect beacon with the page URL embedded (exercises
    // embedded-URL extraction and the dynamic-value normalizer).
    req.true_type = RequestType::kImage;
    req.url = "http://" + domain + "/collect?v=1&cid=" + hex_token(rng, 16) +
              "&dl=" + encode_url(page.page_url) +
              "&z=" + std::to_string(rng.below(1U << 31));
    req.reported_mime = "image/gif";
    req.size = 43;  // the classic 1x1 beacon
  } else if (rng.chance(0.3)) {
    req.true_type = RequestType::kScript;
    req.url = "http://" + domain + "/tag/" + hex_token(rng, 6) +
              "-tracking.js";
    req.reported_mime = "application/javascript";
    req.size = static_cast<std::uint64_t>(rng.lognormal(9.3, 0.6));
  } else {
    req.true_type = RequestType::kImage;
    std::string host = domain;
    if (rng.chance(0.10)) {
      // Beacon bounced through the publisher's CDN bucket — still hits
      // EasyPrivacy's generic /pixel.gif? rule (shared infrastructure).
      host = cdn_host_for(publisher);
      req.server_ip = publisher.cdn_server;
      req.as_number = ecosystem_.asn_db().lookup(publisher.cdn_server);
      req.company = SIZE_MAX;
    }
    req.url = "http://" + host + "/pixel.gif?cb=" +
              std::to_string(1'400'000'000 + rng.below(100'000'000)) +
              "&ref=" + encode_url(page.page_url);
    req.reported_mime = "image/gif";
    req.size = 43;
  }
  maybe_corrupt_mime(req, rng);
  push(page, std::move(req));
}

void PageModel::add_ad_chain(PageLoad& page, util::Rng& rng,
                             const Publisher& publisher, int slot) const {
  const auto network_index =
      publisher.ad_partners[rng.below(publisher.ad_partners.size())];
  const auto& network = ecosystem_.companies()[network_index];
  const double base_offset = page.requests[0].offset_ms +
                             rng.exponential(300.0);

  // Own-platform publishers serve first-party creatives directly.
  if (publisher.own_ad_platform && rng.chance(0.8)) {
    SimRequest creative;
    creative.parent = 0;
    creative.referer = page.page_url;
    creative.offset_ms = base_offset;
    creative.intent = publisher.acceptable_ads ? Intent::kAaAd : Intent::kAd;
    creative.true_type = RequestType::kImage;
    creative.url = "http://" + publisher.domain + "/ads/selfserve/banner" +
                   std::to_string(rng.below(500)) + ".gif";
    creative.reported_mime = "image/gif";
    creative.size = static_cast<std::uint64_t>(rng.lognormal(9.0, 0.9));
    creative.server_ip = publisher.server;
    creative.as_number = publisher.as_number;
    maybe_corrupt_mime(creative, rng);
    push(page, std::move(creative));
    return;
  }

  const bool aa_inventory = publisher.acceptable_ads &&
                            network.acceptable_ads && rng.chance(0.40);
  const Intent ad_intent = aa_inventory ? Intent::kAaAd : Intent::kAd;
  const std::string& net_domain =
      network.domains[rng.below(network.domains.size())];

  // 1. Ad-network script.
  SimRequest script;
  script.parent = 0;
  script.referer = page.page_url;
  script.offset_ms = base_offset;
  script.intent = ad_intent;
  script.company = network_index;
  script.true_type = RequestType::kScript;
  script.https = rng.chance(0.08);
  script.url = "http://" + net_domain + (aa_inventory ? "/aa" : "") +
               "/ads/show.js?slot=" + std::to_string(slot) +
               "&ad_unit=" + hex_token(rng, 8) + "&zone=" + publisher.domain;
  script.reported_mime = "application/javascript";
  script.size = static_cast<std::uint64_t>(rng.lognormal(9.9, 0.7));
  script.server_ip = pick_server(network, rng);
  script.as_number = network.as_number;
  maybe_corrupt_mime(script, rng);
  const int script_index = push(page, std::move(script));

  // 1b. Anti-fraud "quality" script the list explicitly excepts — blocked
  // only when a MIME lie defeats the $script exception (§4.2 FPs).
  if (network.role == CompanyRole::kAdNetwork &&
      rng.chance(options_.quality_script_rate)) {
    SimRequest quality;
    quality.parent = 0;  // embedded by the publisher page itself
    quality.referer = page.page_url;
    quality.offset_ms = base_offset + rng.exponential(40.0);
    quality.intent = Intent::kContent;  // ABP lets it through
    quality.company = network_index;
    quality.true_type = RequestType::kScript;
    quality.url = "http://" + network.domains.front() + "/q/check?v=" +
                  std::to_string(rng.below(64));
    quality.reported_mime = "application/javascript";
    quality.size = static_cast<std::uint64_t>(rng.lognormal(8.8, 0.5));
    quality.server_ip = pick_server(network, rng);
    quality.as_number = network.as_number;
    maybe_corrupt_mime(quality, rng);
    // Extensionless JS endpoints lie about their type notoriously often;
    // this is the paper's dominant false-positive source (§4.2).
    if (rng.chance(0.02)) quality.reported_mime = "text/html";
    push(page, std::move(quality));
  }

  // 2. Optional exchange hop (RTB auction).
  int creative_parent = script_index;
  const AdCompany* creative_company = &network;
  std::size_t creative_company_index = network_index;
  const bool through_exchange =
      network.role == CompanyRole::kAdExchange || rng.chance(0.35);
  if (through_exchange) {
    const AdCompany* exchange = &network;
    std::size_t exchange_index = network_index;
    if (network.role != CompanyRole::kAdExchange) {
      // Route through a random exchange partner.
      std::vector<std::size_t> exchanges;
      for (std::size_t i = 0; i < ecosystem_.companies().size(); ++i) {
        if (ecosystem_.companies()[i].role == CompanyRole::kAdExchange) {
          exchanges.push_back(i);
        }
      }
      exchange_index = exchanges[rng.below(exchanges.size())];
      exchange = &ecosystem_.companies()[exchange_index];
    }
    SimRequest bid;
    bid.parent = script_index;
    bid.referer = page.page_url;
    bid.offset_ms = base_offset + rng.exponential(50.0);
    bid.intent = ad_intent;
    bid.company = exchange_index;
    bid.true_type = RequestType::kXhr;
    bid.url = "http://" + exchange->domains.front() + "/rtb/bid?id=" +
              hex_token(rng, 12) + "&u=" + encode_url(page.page_url);
    bid.reported_mime = "application/xml";
    bid.size = static_cast<std::uint64_t>(rng.lognormal(6.9, 0.5));
    bid.server_ip = pick_server(*exchange, rng);
    bid.as_number = exchange->as_number;
    bid.rtb = exchange->rtb;
    maybe_corrupt_mime(bid, rng);
    creative_parent = push(page, std::move(bid));
  }

  // 3. The creative itself, sometimes behind a 302 with a bare follow-up.
  SimRequest creative;
  creative.referer = page.page_url;
  creative.offset_ms = base_offset + rng.exponential(120.0) +
                       (through_exchange ? 120.0 : 0.0);
  creative.intent = ad_intent;
  creative.company = creative_company_index;
  creative.server_ip = pick_server(*creative_company, rng);
  creative.as_number = creative_company->as_number;
  creative.https = rng.chance(0.08);
  const std::string creative_dir = aa_inventory ? "/aa/creative/" : "/banners/";
  const bool video_ad = publisher.category == SiteCategory::kVideo &&
                        rng.chance(0.25);
  if (video_ad) {
    creative.true_type = RequestType::kMedia;
    creative.url = "http://" + net_domain + creative_dir + "spot" +
                   std::to_string(rng.below(2000)) + ".mp4";
    creative.reported_mime = "video/mp4";
    // 15-45 s pre-roll in one object — deliberately unchunked (§7.2).
    creative.size = static_cast<std::uint64_t>(rng.lognormal(14.8, 0.3));
  } else if (rng.chance(0.05)) {
    creative.true_type = RequestType::kObject;
    creative.url = "http://" + net_domain + creative_dir + "rich" +
                   std::to_string(rng.below(500)) + ".swf";
    creative.reported_mime = "application/x-shockwave-flash";
    creative.size = static_cast<std::uint64_t>(rng.lognormal(11.8, 0.6));
  } else {
    creative.true_type = RequestType::kImage;
    const double pick = rng.uniform();
    if (pick < 0.70) {
      creative.url = "http://" + net_domain + creative_dir + "b" +
                     std::to_string(rng.below(5000)) + ".gif";
      creative.reported_mime = "image/gif";
      creative.size = rng.chance(0.35)
                          ? 43  // tracking-style creative stub
                          : static_cast<std::uint64_t>(rng.lognormal(8.9, 1.0));
    } else {
      creative.url = "http://" + net_domain + creative_dir + "b" +
                     std::to_string(rng.below(5000)) + ".jpg";
      creative.reported_mime = "image/jpeg";
      creative.size = static_cast<std::uint64_t>(rng.lognormal(10.3, 0.8));
    }
  }
  // A share of creatives is delivered from the publisher's CDN account
  // (same infrastructure as regular content — §8.1's synergy argument).
  if (!video_ad && creative.true_type == RequestType::kImage &&
      rng.chance(0.22)) {
    const auto cdn_host = cdn_host_for(publisher);
    const auto slash = creative.url.find('/', 7);
    creative.url = "http://" + cdn_host + "/static/" + publisher.domain +
                   creative.url.substr(slash);
    creative.server_ip = publisher.cdn_server;
    creative.as_number = ecosystem_.asn_db().lookup(publisher.cdn_server);
  }
  maybe_corrupt_mime(creative, rng);

  const bool embed_no_referer = !aa_inventory && !video_ad &&
                                creative.true_type == RequestType::kImage &&
                                rng.chance(0.10);
  if (embed_no_referer) {
    // Off the generic /banners/ path: only the third-party domain rule
    // catches it, which needs the page context from the embedded URL.
    const auto slash2 = creative.url.find("/banners/");
    if (slash2 != std::string::npos) {
      creative.url.replace(slash2, 9, "/delivery/");
    }
    // Some ad scripts receive the creative URL as a parameter and fetch
    // it from a context that sends no Referer. Only the embedded-URL
    // extraction (§3.1) can re-attach the creative to its page.
    SimRequest loader;
    loader.parent = creative_parent;
    loader.referer = page.page_url;
    loader.offset_ms = creative.offset_ms - 10.0;
    loader.intent = ad_intent;
    loader.company = creative_company_index;
    loader.true_type = RequestType::kScript;
    loader.url = "http://" + net_domain + "/render.js?img=" +
                 encode_url(creative.url) + "&slot=" + std::to_string(slot);
    loader.reported_mime = "application/javascript";
    loader.size = static_cast<std::uint64_t>(rng.lognormal(8.6, 0.4));
    loader.server_ip = pick_server(*creative_company, rng);
    loader.as_number = creative_company->as_number;
    maybe_corrupt_mime(loader, rng);
    creative.parent = push(page, std::move(loader));
    creative.referer.clear();
  } else if (rng.chance(options_.creative_redirect_rate)) {
    // /adclick 302 hop; the creative request then has NO Referer — the
    // chain only survives via Location patching.
    SimRequest redirect;
    redirect.parent = creative_parent;
    redirect.referer = page.page_url;
    redirect.offset_ms = creative.offset_ms - 20.0;
    redirect.intent = ad_intent;
    redirect.company = creative_company_index;
    redirect.true_type = creative.true_type;  // ABP sees the <img> tag type
    redirect.url = "http://" + net_domain + "/adclick?dest=" +
                   encode_url(creative.url) + "&price=" +
                   std::to_string(rng.below(1000));
    redirect.status = 302;
    redirect.location = creative.url;
    redirect.reported_mime = "text/html";
    redirect.size = 0;
    redirect.server_ip = pick_server(*creative_company, rng);
    redirect.as_number = creative_company->as_number;
    const int redirect_index = push(page, std::move(redirect));
    creative.parent = redirect_index;
    creative.referer.clear();
  } else {
    creative.parent = creative_parent;
  }
  const int creative_index = push(page, std::move(creative));

  // 3b. Exception-protected callback endpoint (the paper's
  // "@@*jsp?callback=aslHandleAds*" example): content the plugin passes,
  // but only a filter-aware normalizer keeps the exception intact.
  if (rng.chance(0.08)) {
    SimRequest callback;
    callback.parent = script_index;
    callback.referer = page.page_url;
    callback.offset_ms = base_offset + rng.exponential(45.0);
    callback.intent = Intent::kContent;
    callback.company = network_index;
    callback.true_type = RequestType::kScript;
    callback.url = "http://" + net_domain +
                   "/serve.jsp?callback=aslHandleAds" + hex_token(rng, 16) +
                   "&sid=" + hex_token(rng, 24);
    callback.reported_mime = "application/javascript";
    callback.size = static_cast<std::uint64_t>(rng.lognormal(8.2, 0.4));
    callback.server_ip = pick_server(*creative_company, rng);
    callback.as_number = creative_company->as_number;
    push(page, std::move(callback));
  }

  // 4. Impression beacon.
  if (rng.chance(0.5)) {
    SimRequest imp;
    imp.parent = creative_index;
    imp.referer = page.page_url;
    imp.offset_ms = creative.offset_ms + rng.exponential(60.0);
    imp.intent = ad_intent;
    imp.company = creative_company_index;
    imp.true_type = RequestType::kImage;
    imp.url = "http://" + net_domain + "/imp?price=" +
              std::to_string(rng.below(500)) + "&pub=" + publisher.domain +
              "&ts=" + std::to_string(1'400'000'000 + rng.below(100'000'000));
    imp.reported_mime = "image/gif";
    imp.size = 43;
    imp.server_ip = pick_server(*creative_company, rng);
    imp.as_number = creative_company->as_number;
    maybe_corrupt_mime(imp, rng);
    push(page, std::move(imp));
  }
}

void PageModel::add_google_api(PageLoad& page, util::Rng& rng) const {
  if (google_apis_ == SIZE_MAX) return;
  const auto& company = ecosystem_.companies()[google_apis_];
  // SDKs, map tiles, thumbnails: the search giant's *content* footprint,
  // which keeps its AS-level ad share at paper levels (Table 5: 50.7%).
  const int objects = 1 + static_cast<int>(rng.below(3));
  for (int i = 0; i < objects; ++i) {
    SimRequest req;
    req.parent = 0;
    req.referer = page.page_url;
    req.offset_ms = page.requests[0].offset_ms + rng.exponential(220.0);
    req.intent = Intent::kContent;
    req.company = google_apis_;
    req.server_ip = pick_server(company, rng);
    req.as_number = company.as_number;
    if (rng.chance(0.5)) {
      req.true_type = RequestType::kScript;
      req.url = "http://apis.googlesim.com/sdk/v" +
                std::to_string(rng.below(8)) + "/loader.js";
      req.reported_mime = "application/javascript";
      req.size = static_cast<std::uint64_t>(rng.lognormal(10.4, 0.5));
    } else {
      req.true_type = RequestType::kImage;
      req.url = "http://apis.googlesim.com/thumb/t" +
                std::to_string(rng.below(100000)) + ".jpg";
      req.reported_mime = "image/jpeg";
      req.size = static_cast<std::uint64_t>(rng.lognormal(9.8, 0.9));
    }
    maybe_corrupt_mime(req, rng);
    push(page, std::move(req));
  }
}

void PageModel::add_first_party_promo(PageLoad& page, util::Rng& rng,
                                      const Publisher& publisher) const {
  // House ads served from the publisher's own host; caught by EasyList's
  // generic path rules. Spreads single-digit EasyList hits across
  // thousands of content servers (the paper's long per-server tail).
  SimRequest req;
  req.parent = 0;
  req.referer = page.page_url;
  req.offset_ms = page.requests[0].offset_ms + rng.exponential(350.0);
  req.intent = Intent::kAd;
  req.true_type = RequestType::kImage;
  req.url = "http://" + publisher.domain + "/banners/house" +
            std::to_string(rng.below(50)) + ".gif";
  req.reported_mime = "image/gif";
  req.size = static_cast<std::uint64_t>(rng.lognormal(9.0, 0.8));
  req.server_ip = publisher.server;
  req.as_number = publisher.as_number;
  maybe_corrupt_mime(req, rng);
  push(page, std::move(req));
}

PageLoad PageModel::build(std::size_t publisher_index, util::Rng& rng) const {
  const Publisher& publisher = ecosystem_.publishers()[publisher_index];
  PageLoad page;
  page.publisher = publisher_index;

  SimRequest main;
  main.parent = -1;
  main.offset_ms = 0;
  main.intent = Intent::kContent;
  main.true_type = RequestType::kDocument;
  main.https = publisher.https_main;
  const char* stem = page_path_stem(publisher.category);
  std::string path(stem);
  if (path.find('?') == std::string::npos) {
    path += std::to_string(rng.below(100000)) + ".html";
  }
  page.page_url = std::string(main.https ? "https" : "http") + "://" +
                  publisher.domain + path;
  main.url = page.page_url;
  main.reported_mime = "text/html";
  main.size = static_cast<std::uint64_t>(rng.lognormal(10.3, 0.6));
  main.server_ip = publisher.server;
  main.as_number = publisher.as_number;
  push(page, std::move(main));

  const int content_objects = std::max(
      3, static_cast<int>(rng.normal(publisher.content_objects_mean,
                                     publisher.content_objects_mean * 0.25)));
  for (int i = 0; i < content_objects; ++i) {
    add_content_object(page, rng, publisher);
  }
  if (publisher.ad_slots > 0 && rng.chance(0.06)) {
    // First-party click logger carrying a *raw* ad URL in its query.
    // Without query normalization the generic EasyList path rules match
    // inside the query string and misclassify this content request.
    SimRequest outclick;
    outclick.parent = 0;
    outclick.referer = page.page_url;
    outclick.offset_ms = rng.exponential(800.0);
    outclick.intent = Intent::kContent;
    outclick.true_type = RequestType::kXhr;
    outclick.url = "http://" + publisher.domain + "/outclick?u=http://" +
                   ecosystem_.companies()[publisher.ad_partners[0]]
                       .domains.front() +
                   "/banners/b" + std::to_string(rng.below(5000)) +
                   ".gif&t=" + std::to_string(1'400'000'000 + rng.below(
                                                  100'000'000));
    outclick.reported_mime = "application/xml";
    outclick.size = static_cast<std::uint64_t>(rng.lognormal(5.2, 0.6));
    outclick.server_ip = publisher.server;
    outclick.as_number = publisher.as_number;
    push(page, std::move(outclick));
  }
  if (publisher.uses_webfonts && rng.chance(0.45)) {
    add_font(page, rng);
  }
  if (rng.chance(0.35)) add_google_api(page, rng);
  if (rng.chance(0.04)) add_first_party_promo(page, rng, publisher);
  for (int i = 0; i < publisher.tracker_count; ++i) {
    add_tracker(page, rng, publisher);
  }
  for (int slot = 0; slot < publisher.ad_slots; ++slot) {
    add_ad_chain(page, rng, publisher, slot);
  }
  if (options_.generate_payloads) synthesize_payload(page, rng, publisher);
  return page;
}

void PageModel::synthesize_payload(PageLoad& page, util::Rng& rng,
                                   const Publisher& publisher) const {
  std::string html =
      "<!DOCTYPE html>\n<html><head><title>" + publisher.domain +
      "</title>\n";
  std::string body = "<body>\n";
  // Reference every direct child of the document with the right tag —
  // the DOM knowledge Adblock Plus works from.
  for (std::size_t i = 1; i < page.requests.size(); ++i) {
    const auto& request = page.requests[i];
    if (request.parent != 0 || request.https) continue;
    switch (request.true_type) {
      case http::RequestType::kImage:
        body += "<img src=\"" + request.url + "\" alt=\"\"/>\n";
        break;
      case http::RequestType::kScript:
        body += "<script src=\"" + request.url + "\"></script>\n";
        break;
      case http::RequestType::kStylesheet:
        html += "<link rel=\"stylesheet\" href=\"" + request.url +
                "\"/>\n";
        break;
      case http::RequestType::kSubdocument:
        body += "<iframe src=\"" + request.url + "\"></iframe>\n";
        break;
      case http::RequestType::kMedia:
        body += "<video src=\"" + request.url + "\"></video>\n";
        break;
      case http::RequestType::kObject:
        body += "<embed src=\"" + request.url + "\"/>\n";
        break;
      default:
        break;  // XHR/fonts are fetched from script/CSS, not markup
    }
  }
  // Regular article content.
  const int paragraphs = 2 + static_cast<int>(rng.below(5));
  for (int i = 0; i < paragraphs; ++i) {
    body += "<div class=\"article\">";
    const int words = 30 + static_cast<int>(rng.below(120));
    for (int w = 0; w < words; ++w) body += "lorem ";
    body += "</div>\n";
  }
  // Hidden text ads: embedded in the HTML, never a request. The classes
  // match the element-hiding rules the list generator ships.
  if (publisher.ad_slots > 0) {
    const int text_ads = static_cast<int>(rng.below(3));
    static const char* kAdClasses[] = {"sponsored-link", "adsbox",
                                       "ad-banner"};
    for (int i = 0; i < text_ads; ++i) {
      body += "<div class=\"";
      body += kAdClasses[rng.below(3)];
      body += "\">buy things - sponsored result " +
              std::to_string(rng.below(100)) + "</div>\n";
      ++page.hidden_text_ads;
    }
  }
  html += "</head>\n" + body + "</body></html>\n";
  page.requests[0].payload = std::move(html);
  page.requests[0].size = page.requests[0].payload.size();
}

}  // namespace adscope::sim
