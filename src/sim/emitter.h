// TrafficEmitter — turns (blocked) page loads into header-level trace
// records with realistic timing.
//
// Timing model (§8.2 grounding):
//   * TCP hand-shake = per-AS base WAN RTT x jitter (the monitor sits in
//     the aggregation network, so access-link delay is absent),
//   * HTTP hand-shake = TCP hand-shake + server think time. Think time
//     has three regimes: cache hits (~1 ms), dynamic back-ends (~10 ms)
//     and RTB auctions / back-office fetches (~120 ms) — producing the
//     three Figure-7 modes.
// HTTPS requests become opaque TlsFlows; Referer is dropped on
// HTTPS->HTTP transitions, as browsers do.
#pragma once

#include <string>

#include "sim/browser_profile.h"
#include "sim/ecosystem.h"
#include "sim/page_model.h"
#include "trace/record.h"
#include "util/rng.h"

namespace adscope::sim {

struct EmitCounts {
  std::uint64_t http_requests = 0;
  std::uint64_t https_requests = 0;
  std::uint64_t bytes = 0;
};

class TrafficEmitter {
 public:
  explicit TrafficEmitter(const Ecosystem& ecosystem)
      : ecosystem_(ecosystem) {}

  /// Emit the surviving requests of a page load starting at `start_ms`.
  EmitCounts emit_page(const PageLoad& page, const std::vector<bool>& emitted,
                       std::uint64_t start_ms, netdb::IpV4 client_ip,
                       const std::string& user_agent, trace::TraceSink& sink,
                       util::Rng& rng) const;

 private:
  std::uint32_t tcp_handshake_us(netdb::AsNumber as_number,
                                 util::Rng& rng) const;
  std::uint32_t think_time_us(const SimRequest& request, util::Rng& rng) const;

  const Ecosystem& ecosystem_;
};

}  // namespace adscope::sim
