// Browser-side blocking emulation.
//
// When a real browser runs an ad-blocker, blocked requests never reach
// the network — and everything they would have triggered disappears too.
// A Blocker decides per request (with full DOM-level knowledge: true
// type, true page) whether the extension suppresses it; apply_blocking
// then prunes the request tree transitively.
//
// The seven §4.1 crawl profiles map onto these blockers:
//   Vanilla            — NoBlocker
//   AdBP-{Ads,Privacy,Paranoia}      — AbpBlocker with the paper's list
//                                      combinations
//   Ghostery-{Ads,Privacy,Paranoia}  — GhosteryBlocker with category sets
#pragma once

#include <memory>
#include <vector>

#include "adblock/engine.h"
#include "sim/listgen.h"
#include "sim/page_model.h"

namespace adscope::sim {

class Blocker {
 public:
  virtual ~Blocker() = default;
  /// Would the extension prevent this request from being issued?
  virtual bool blocks(const SimRequest& request,
                      const PageLoad& page) const = 0;
};

class NoBlocker final : public Blocker {
 public:
  bool blocks(const SimRequest&, const PageLoad&) const override {
    return false;
  }
};

/// Adblock Plus with a set of subscriptions. Uses the production
/// FilterEngine — but fed ground truth (true type, true page), like the
/// real extension operating on the DOM.
class AbpBlocker final : public Blocker {
 public:
  AbpBlocker(const GeneratedLists& lists, const ListSelection& selection)
      : engine_(make_engine(lists, selection)) {}

  bool blocks(const SimRequest& request, const PageLoad& page) const override;

  const adblock::FilterEngine& engine() const noexcept { return engine_; }

 private:
  adblock::FilterEngine engine_;
};

/// Ghostery with a set of blocked categories (domain-based database).
class GhosteryBlocker final : public Blocker {
 public:
  GhosteryBlocker(GhosteryDb db, GhosteryDb::Selection selection)
      : db_(std::move(db)), selection_(selection) {}

  bool blocks(const SimRequest& request, const PageLoad& page) const override;

 private:
  GhosteryDb db_;
  GhosteryDb::Selection selection_;
};

/// Mark each request as emitted or suppressed: a request survives iff the
/// blocker passes it AND its parent survived.
std::vector<bool> apply_blocking(const PageLoad& page, const Blocker& blocker);

/// The §4.1 instrumented-browser profiles.
enum class BrowserMode : std::uint8_t {
  kVanilla,
  kAbpAds,       // EasyList + acceptable ads
  kAbpPrivacy,   // EasyPrivacy only
  kAbpParanoia,  // EasyList + EasyPrivacy
  kGhosteryAds,
  kGhosteryPrivacy,
  kGhosteryParanoia,
};

std::string_view to_string(BrowserMode mode) noexcept;

/// Instantiate the blocker for a crawl profile.
std::unique_ptr<Blocker> make_blocker(BrowserMode mode,
                                      const GeneratedLists& lists,
                                      const Ecosystem& ecosystem);

}  // namespace adscope::sim
