#include "sim/browser_profile.h"

#include "http/url.h"
#include "util/strings.h"

namespace adscope::sim {

bool AbpBlocker::blocks(const SimRequest& request,
                        const PageLoad& page) const {
  adblock::Request query;
  query.url = request.url;
  query.url_lower = util::to_lower(request.url);
  if (const auto parsed = http::Url::parse(request.url)) {
    query.host = parsed->host();
  }
  query.page_url_lower = util::to_lower(page.page_url);
  if (const auto parsed = http::Url::parse(page.page_url)) {
    query.page_host = parsed->host();
  }
  query.type = request.true_type;
  return engine_.classify(query).decision == adblock::Decision::kBlocked;
}

bool GhosteryBlocker::blocks(const SimRequest& request,
                             const PageLoad& page) const {
  const auto parsed = http::Url::parse(request.url);
  if (!parsed) return false;
  // Ghostery only targets third-party elements.
  const auto page_parsed = http::Url::parse(page.page_url);
  if (page_parsed && parsed->host() == page_parsed->host()) return false;
  return db_.blocks(parsed->host(), selection_);
}

std::vector<bool> apply_blocking(const PageLoad& page,
                                 const Blocker& blocker) {
  std::vector<bool> emitted(page.requests.size(), false);
  for (std::size_t i = 0; i < page.requests.size(); ++i) {
    const auto& request = page.requests[i];
    const bool parent_ok =
        request.parent < 0 || emitted[static_cast<std::size_t>(request.parent)];
    emitted[i] = parent_ok && !blocker.blocks(request, page);
  }
  return emitted;
}

std::string_view to_string(BrowserMode mode) noexcept {
  switch (mode) {
    case BrowserMode::kVanilla: return "Vanilla";
    case BrowserMode::kAbpAds: return "AdBP-Ad";
    case BrowserMode::kAbpPrivacy: return "AdBP-Pr";
    case BrowserMode::kAbpParanoia: return "AdBP-Pa";
    case BrowserMode::kGhosteryAds: return "Ghostery-Ad";
    case BrowserMode::kGhosteryPrivacy: return "Ghostery-Pr";
    case BrowserMode::kGhosteryParanoia: return "Ghostery-Pa";
  }
  return "Vanilla";
}

std::unique_ptr<Blocker> make_blocker(BrowserMode mode,
                                      const GeneratedLists& lists,
                                      const Ecosystem& ecosystem) {
  ListSelection selection;
  switch (mode) {
    case BrowserMode::kVanilla:
      return std::make_unique<NoBlocker>();
    case BrowserMode::kAbpAds:
      selection = {.easylist = true,
                   .derivative = false,
                   .easyprivacy = false,
                   .acceptable_ads = true};
      return std::make_unique<AbpBlocker>(lists, selection);
    case BrowserMode::kAbpPrivacy:
      selection = {.easylist = false,
                   .derivative = false,
                   .easyprivacy = true,
                   .acceptable_ads = false};
      return std::make_unique<AbpBlocker>(lists, selection);
    case BrowserMode::kAbpParanoia:
      selection = {.easylist = true,
                   .derivative = false,
                   .easyprivacy = true,
                   .acceptable_ads = false};
      return std::make_unique<AbpBlocker>(lists, selection);
    case BrowserMode::kGhosteryAds:
      return std::make_unique<GhosteryBlocker>(build_ghostery_db(ecosystem),
                                               GhosteryDb::Selection::ads());
    case BrowserMode::kGhosteryPrivacy:
      return std::make_unique<GhosteryBlocker>(
          build_ghostery_db(ecosystem), GhosteryDb::Selection::privacy_mode());
    case BrowserMode::kGhosteryParanoia:
      return std::make_unique<GhosteryBlocker>(
          build_ghostery_db(ecosystem), GhosteryDb::Selection::paranoia());
  }
  return std::make_unique<NoBlocker>();
}

}  // namespace adscope::sim
