#include "sim/crawl_sim.h"

#include "sim/ua_factory.h"

namespace adscope::sim {

CrawlSimulator::CrawlSimulator(const Ecosystem& ecosystem,
                               const GeneratedLists& lists,
                               std::uint64_t seed)
    : ecosystem_(ecosystem),
      lists_(lists),
      page_model_(ecosystem),
      emitter_(ecosystem),
      seed_(seed) {}

CrawlResult CrawlSimulator::crawl(BrowserMode mode, std::size_t top_n) const {
  CrawlResult result;
  result.mode = mode;
  const auto blocker = make_blocker(mode, lists_, ecosystem_);

  // The crawler is one Chromium instance on a campus network.
  util::Rng ua_rng(seed_ ^ 0xC7A31ULL);
  const std::string user_agent =
      make_desktop_ua(ua::BrowserFamily::kChrome, ua_rng);
  const netdb::IpV4 crawler_ip = (netdb::IpV4{10} << 24) |
                                 (netdb::IpV4{250} << 16) | 7;

  trace::TraceMeta meta;
  meta.name = std::string("crawl-") + std::string(to_string(mode));
  meta.start_unix_s = 1'428'710'400;  // 2015-04-11
  meta.subscribers = 1;
  result.trace.on_meta(meta);

  const std::size_t sites =
      std::min(top_n, ecosystem_.publishers().size());
  std::uint64_t now_ms = 0;
  for (std::size_t site = 0; site < sites; ++site) {
    // Page composition must be identical across modes: derive the page
    // RNG only from (seed, site).
    util::Rng page_rng(seed_ ^ (0x9E3779B97F4A7C15ULL * (site + 1)));
    const PageLoad page = page_model_.build(site, page_rng);
    const auto emitted = apply_blocking(page, *blocker);

    CrawlVisit visit;
    visit.publisher = site;
    visit.first_txn = result.trace.http().size();
    const auto counts = emitter_.emit_page(page, emitted, now_ms, crawler_ip,
                                           user_agent, result.trace, page_rng);
    visit.txn_count = result.trace.http().size() - visit.first_txn;
    visit.https_requests = counts.https_requests;
    result.visits.push_back(visit);
    result.http_requests += counts.http_requests;
    result.https_requests += counts.https_requests;
    now_ms += 10'000;  // 5 s settle + load + 5 s, like the Selenium loop
  }
  meta.duration_s = now_ms / 1000;
  return result;
}

}  // namespace adscope::sim
