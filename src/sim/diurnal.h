// Diurnal activity model for residential users (§7.1, Figure 5).
//
// Hourly weights follow the paper's qualitative description: quiet
// nights, visible lunch dip, evening peak before midnight; Saturdays
// noticeably quieter, Sundays slightly quieter. Ad-blocker users are
// modelled as relatively more night-active (the paper's explanation for
// the diurnal ad-ratio: at peak time non-blocking users outnumber
// Adblock Plus users 2:1, off-hours roughly 1:1).
#pragma once

#include <array>
#include <cstdint>

namespace adscope::sim {

/// Relative request rate for local hour-of-day [0, 24).
constexpr std::array<double, 24> kHourlyWeight = {
    0.45, 0.25, 0.15, 0.10, 0.08, 0.10,  // 00-05: night
    0.20, 0.35, 0.50, 0.60, 0.65, 0.70,  // 06-11: morning ramp
    0.55, 0.65, 0.70, 0.75, 0.80, 0.85,  // 12-17: lunch dip + afternoon
    0.95, 1.00, 1.00, 0.95, 0.85, 0.65,  // 18-23: evening peak
};

struct DiurnalClock {
  /// Local hour at trace second 0 (RBN-1 starts 00:00, RBN-2 15:30).
  unsigned start_hour = 0;
  /// Day-of-week at trace start: 0 = Monday ... 5 = Saturday, 6 = Sunday.
  unsigned start_weekday = 0;

  unsigned hour_at(std::uint64_t trace_s) const noexcept {
    return static_cast<unsigned>((start_hour + trace_s / 3600) % 24);
  }
  unsigned weekday_at(std::uint64_t trace_s) const noexcept {
    const auto hours = start_hour + trace_s / 3600;
    return static_cast<unsigned>((start_weekday + hours / 24) % 7);
  }
};

/// Activity multiplier at a trace offset. `night_owl` flattens the curve
/// toward constant activity (used for ad-blocker users).
inline double diurnal_weight(const DiurnalClock& clock, std::uint64_t trace_s,
                             bool night_owl = false) noexcept {
  double weight = kHourlyWeight[clock.hour_at(trace_s)];
  const auto weekday = clock.weekday_at(trace_s);
  if (weekday == 5) {
    weight *= 0.72;  // Saturday
  } else if (weekday == 6) {
    weight *= 0.88;  // Sunday
  }
  if (night_owl) weight = 0.45 * weight + 0.55 * 0.6;
  return weight;
}

}  // namespace adscope::sim
