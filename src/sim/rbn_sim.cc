#include "sim/rbn_sim.h"

#include <algorithm>
#include <array>

#include "sim/ua_factory.h"
#include "util/hash.h"

namespace adscope::sim {

RbnOptions rbn1_options(std::uint32_t households) {
  RbnOptions options;
  options.name = "RBN-1";
  options.households = households;
  options.duration_s = 4ULL * 24 * 3600;  // 4 days
  options.start_hour = 0;
  options.start_weekday = 5;  // Saturday, 2015-04-11
  options.start_unix_s = 1'428'710'400;
  options.uplink_gbps = 3;
  options.activity_scale = 0.45;  // long trace: keep volume tractable
  return options;
}

RbnOptions rbn2_options(std::uint32_t households) {
  RbnOptions options;
  options.households = households;
  return options;
}

RbnSimulator::RbnSimulator(const Ecosystem& ecosystem,
                           const GeneratedLists& lists, std::uint64_t seed)
    : ecosystem_(ecosystem),
      lists_(lists),
      page_model_(ecosystem),
      emitter_(ecosystem),
      seed_(seed) {
  abp_pool_.resize(8);
  for (std::size_t bits = 0; bits < 8; ++bits) {
    ListSelection selection;
    selection.easylist = true;
    selection.easyprivacy = (bits & 1U) != 0;
    selection.acceptable_ads = (bits & 2U) != 0;
    selection.derivative = (bits & 4U) != 0;
    abp_pool_[bits] = std::make_unique<AbpBlocker>(lists, selection);
  }
  ghostery_ = std::make_unique<GhosteryBlocker>(build_ghostery_db(ecosystem),
                                                GhosteryDb::Selection::ads());
  using adblock::FilterList;
  using adblock::ListKind;
  easylist_meta_ =
      FilterList::parse(lists.easylist, ListKind::kEasyList, "easylist");
  derivative_meta_ = FilterList::parse(
      lists.easylist_derivative, ListKind::kEasyListDerivative,
      "easylistgermany");
  easyprivacy_meta_ = FilterList::parse(lists.easyprivacy,
                                        ListKind::kEasyPrivacy,
                                        "easyprivacy");
  acceptable_ads_meta_ = FilterList::parse(
      lists.acceptable_ads, ListKind::kAcceptableAds, "exceptionrules");
}

namespace {

struct Device {
  std::string user_agent;
  std::uint32_t household = 0;
  netdb::IpV4 ip = 0;  // address at trace start
  ua::BrowserFamily family = ua::BrowserFamily::kNone;
  bool is_browser = false;
  bool mobile = false;
  BlockerKind blocker_kind = BlockerKind::kNone;
  ListSelection abp_config;
  adblock::SubscriptionManager subscriptions;
  const Blocker* blocker = nullptr;
  double rate_pages_per_hour = 0;  // at diurnal weight 1.0
  bool night_owl = false;
  std::array<std::size_t, 3> preferred_categories{};
  std::uint64_t rng_salt = 0;
};

constexpr std::size_t kCategoryCount = 10;

}  // namespace

RbnStats RbnSimulator::simulate(const RbnOptions& options,
                                trace::TraceSink& sink) const {
  RbnStats stats;
  util::Rng rng(seed_ ^ util::fnv1a(options.name));

  trace::TraceMeta meta;
  meta.name = options.name;
  meta.start_unix_s = options.start_unix_s;
  meta.duration_s = options.duration_s;
  meta.subscribers = options.households;
  meta.uplink_gbps = options.uplink_gbps;
  sink.on_meta(meta);

  const DiurnalClock clock{options.start_hour, options.start_weekday};

  // Publisher indices grouped by category, popularity order preserved.
  std::vector<std::vector<std::size_t>> by_category(kCategoryCount);
  for (std::size_t i = 0; i < ecosystem_.publishers().size(); ++i) {
    by_category[static_cast<std::size_t>(
                    ecosystem_.publishers()[i].category)]
        .push_back(i);
  }
  std::vector<util::ZipfSampler> category_zipf;
  category_zipf.reserve(kCategoryCount);
  for (const auto& sites : by_category) {
    category_zipf.emplace_back(std::max<std::size_t>(sites.size(), 1), 0.9);
  }

  // ------------------------------------------------------------------
  // Build the device population.
  // ------------------------------------------------------------------
  std::vector<Device> devices;
  std::vector<bool> household_has_abp(options.households, false);

  auto browser_families = [&](util::Rng& r) {
    const double draw = r.uniform();
    if (draw < 0.42) return ua::BrowserFamily::kFirefox;
    if (draw < 0.71) return ua::BrowserFamily::kChrome;
    if (draw < 0.88) return ua::BrowserFamily::kSafari;
    if (draw < 0.97) return ua::BrowserFamily::kInternetExplorer;
    return ua::BrowserFamily::kOther;
  };

  for (std::uint32_t hh = 0; hh < options.households; ++hh) {
    util::Rng hh_rng = rng.fork(hh + 1);
    const netdb::IpV4 ip = ecosystem_.client_ip(hh);
    const bool savvy = hh_rng.chance(options.savvy_household_share);
    const std::uint32_t household_index = hh;
    const int desktops = 1 + static_cast<int>(hh_rng.chance(0.45)) +
                         static_cast<int>(hh_rng.chance(0.15));
    const int mobiles = static_cast<int>(hh_rng.chance(0.75)) +
                        static_cast<int>(hh_rng.chance(0.35));

    auto add_browser = [&](bool mobile) {
      Device device;
      device.household = household_index;
      device.ip = ip;
      device.mobile = mobile;
      device.is_browser = true;
      device.family = mobile ? (hh_rng.chance(0.55)
                                    ? ua::BrowserFamily::kSafari
                                    : ua::BrowserFamily::kChrome)
                             : browser_families(hh_rng);
      device.user_agent = mobile ? make_mobile_ua(hh_rng)
                                 : make_desktop_ua(device.family, hh_rng);
      // Ad-blocker assignment: clustered per household.
      double abp_rate = options.abp_baseline;
      if (savvy) {
        abp_rate = options.abp_mobile;
        if (!mobile) {
          switch (device.family) {
            case ua::BrowserFamily::kFirefox:
            case ua::BrowserFamily::kChrome:
              abp_rate = options.abp_firefox_chrome;
              break;
            case ua::BrowserFamily::kSafari:
              abp_rate = options.abp_safari;
              break;
            case ua::BrowserFamily::kInternetExplorer:
              abp_rate = options.abp_ie;
              break;
            default:
              abp_rate = 0.30;
              break;
          }
        }
      }
      if (hh_rng.chance(abp_rate)) {
        device.blocker_kind = BlockerKind::kAdblockPlus;
        device.abp_config.easylist = true;
        device.abp_config.easyprivacy = hh_rng.chance(options.abp_easyprivacy);
        device.abp_config.acceptable_ads =
            !hh_rng.chance(options.abp_aa_optout);
        device.abp_config.derivative = hh_rng.chance(options.abp_derivative);
        device.blocker = abp_pool_[config_bits(device.abp_config)].get();
        device.night_owl = true;
        household_has_abp[hh] = true;
        // Subscribe with uniformly backdated last-update instants: the
        // installation existed before the capture started, so each list
        // is somewhere within its expiry window at trace start.
        auto backdated = [&](const adblock::FilterList& list_meta) {
          const auto window =
              static_cast<std::int64_t>(list_meta.expires_hours()) * 3600;
          return -static_cast<std::int64_t>(
              hh_rng.below(static_cast<std::uint64_t>(window)));
        };
        device.subscriptions.subscribe(easylist_meta_,
                                       backdated(easylist_meta_));
        if (device.abp_config.derivative) {
          device.subscriptions.subscribe(derivative_meta_,
                                         backdated(derivative_meta_));
        }
        if (device.abp_config.easyprivacy) {
          device.subscriptions.subscribe(easyprivacy_meta_,
                                         backdated(easyprivacy_meta_));
        }
        if (device.abp_config.acceptable_ads) {
          device.subscriptions.subscribe(acceptable_ads_meta_,
                                         backdated(acceptable_ads_meta_));
        }
      } else if (hh_rng.chance(options.ghostery_share)) {
        device.blocker_kind = BlockerKind::kGhostery;
        device.blocker = ghostery_.get();
      } else {
        device.blocker = &no_blocker_;
      }
      // Heavy-tailed activity; ad-blocker users skew engaged/heavy.
      double weight = std::min(20.0, hh_rng.pareto(0.55, 1.25));
      if (device.blocker_kind == BlockerKind::kAdblockPlus) weight *= 1.6;
      device.rate_pages_per_hour =
          (mobile ? 1.1 : 2.1) * weight * options.activity_scale;
      if (hh_rng.chance(options.low_ad_diet_share)) {
        // Ad-light diet: search / reference / streaming / file sharing.
        static constexpr std::size_t kLowAd[] = {
            static_cast<std::size_t>(SiteCategory::kSearch),
            static_cast<std::size_t>(SiteCategory::kReference),
            static_cast<std::size_t>(SiteCategory::kVideo),
            static_cast<std::size_t>(SiteCategory::kFileSharing)};
        for (auto& cat : device.preferred_categories) {
          cat = kLowAd[hh_rng.below(4)];
        }
      } else {
        for (auto& cat : device.preferred_categories) {
          cat = hh_rng.below(kCategoryCount);
        }
      }
      device.rng_salt = hh_rng.next();
      devices.push_back(std::move(device));
      ++stats.browsers;
      if (devices.back().blocker_kind == BlockerKind::kAdblockPlus) {
        ++stats.abp_browsers;
      }
    };

    for (int i = 0; i < desktops; ++i) add_browser(false);
    for (int i = 0; i < mobiles; ++i) add_browser(true);

    // Non-browser noise devices.
    auto add_noise = [&](std::string ua_string, double rate) {
      Device device;
      device.household = household_index;
      device.ip = ip;
      device.user_agent = std::move(ua_string);
      device.is_browser = false;
      device.blocker = &no_blocker_;
      device.rate_pages_per_hour = rate * options.activity_scale;
      device.rng_salt = hh_rng.next();
      for (auto& cat : device.preferred_categories) cat = 0;
      devices.push_back(std::move(device));
    };
    if (hh_rng.chance(0.18)) add_noise(make_console_ua(hh_rng), 0.8);
    if (hh_rng.chance(0.15)) add_noise(make_smarttv_ua(hh_rng), 0.6);
    const int apps = static_cast<int>(hh_rng.range(0, 2));
    for (int i = 0; i < apps; ++i) add_noise(make_app_ua(hh_rng), 1.2);
  }
  stats.devices = static_cast<std::uint32_t>(devices.size());
  stats.abp_households = static_cast<std::uint32_t>(
      std::count(household_has_abp.begin(), household_has_abp.end(), true));

  // ------------------------------------------------------------------
  // Generate traffic device by device.
  // ------------------------------------------------------------------
  const auto hours = (options.duration_s + 3599) / 3600;
  const auto& abp_ips = ecosystem_.abp_servers();

  // Dynamic addressing: deterministic permutation per re-assignment
  // period, so devices of one household keep sharing one address.
  auto address_at = [&](const Device& device, std::uint64_t hour) {
    if (options.ip_reassignment_hours == 0) return device.ip;
    const auto period = hour / options.ip_reassignment_hours;
    if (period == 0) return device.ip;
    const auto offset = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(device.household) + period * 7919) %
        60000);
    return ecosystem_.client_ip(offset);
  };

  for (auto& device : devices) {
    util::Rng dev_rng(seed_ ^ device.rng_salt);

    for (std::uint64_t hour = 0; hour < hours; ++hour) {
      const std::uint64_t hour_start_s = hour * 3600;
      const double weight =
          diurnal_weight(clock, hour_start_s, device.night_owl);
      const double lambda = device.rate_pages_per_hour * weight;
      const auto pages = dev_rng.poisson(lambda);
      if (pages == 0) continue;

      // Adblock Plus checks the subscription schedule while the browser
      // runs; soft-expired lists are re-downloaded over HTTPS (§3.2).
      const netdb::IpV4 current_ip = address_at(device, hour);
      if (device.blocker_kind == BlockerKind::kAdblockPlus) {
        const auto now_s = static_cast<std::int64_t>(hour_start_s);
        for (const auto* subscription : device.subscriptions.due(now_s)) {
          trace::TlsFlow update;
          update.timestamp_ms = (hour_start_s + dev_rng.below(3600)) * 1000;
          update.client_ip = current_ip;
          update.server_ip = abp_ips[dev_rng.below(abp_ips.size())];
          update.server_port = 443;
          update.bytes = subscription->download_bytes + dev_rng.below(4096);
          sink.on_tls(update);
          ++stats.https_flows;
          device.subscriptions.mark_updated(subscription->name, now_s);
        }
      }

      for (std::uint32_t p = 0; p < pages; ++p) {
        const std::uint64_t t_ms =
            (hour_start_s + dev_rng.below(3600)) * 1000 + dev_rng.below(1000);

        if (!device.is_browser) {
          // Consoles/TVs/apps: API chatter, occasionally in-app ads.
          trace::HttpTransaction txn;
          txn.timestamp_ms = t_ms;
          txn.client_ip = current_ip;
          const bool in_app_ad = dev_rng.chance(0.15);
          const auto mopub = ecosystem_.company_by_name("Mopub");
          if (in_app_ad && mopub != SIZE_MAX) {
            const auto& company = ecosystem_.companies()[mopub];
            txn.server_ip =
                company.servers[dev_rng.below(company.servers.size())];
            txn.host = company.domains.front();
            txn.uri = "/rtb/getad?app=" + std::to_string(dev_rng.below(500));
            txn.content_type = "application/xml";
            txn.content_length = 900 + dev_rng.below(4000);
          } else {
            const auto& pub = ecosystem_.publishers()[
                ecosystem_.popularity().sample(dev_rng)];
            txn.server_ip = pub.server;
            txn.host = "api." + pub.domain;
            txn.uri = "/v1/status?device=" + std::to_string(dev_rng.below(64));
            txn.content_type = "application/xml";
            txn.content_length = 300 + dev_rng.below(2000);
          }
          txn.user_agent = device.user_agent;
          txn.tcp_handshake_us =
              12'000 + static_cast<std::uint32_t>(dev_rng.below(20'000));
          txn.http_handshake_us =
              txn.tcp_handshake_us + 1'000 +
              static_cast<std::uint32_t>(dev_rng.below(8'000));
          sink.on_http(txn);
          ++stats.http_requests;
          stats.bytes += txn.content_length;
          continue;
        }

        // Category choice: preferred categories with time-of-day shift.
        std::size_t category = device.preferred_categories[dev_rng.below(3)];
        const unsigned local_hour = clock.hour_at(hour_start_s);
        const bool night = local_hour >= 22 || local_hour < 6;
        if (night && dev_rng.chance(0.35)) {
          category = dev_rng.chance(0.6)
                         ? static_cast<std::size_t>(SiteCategory::kVideo)
                         : static_cast<std::size_t>(SiteCategory::kAdult);
        } else if (!night && dev_rng.chance(0.10)) {
          category = static_cast<std::size_t>(SiteCategory::kNews);
        }
        const auto& sites = by_category[category];
        if (sites.empty()) continue;
        const auto publisher_index =
            sites[category_zipf[category].sample(dev_rng)];

        const PageLoad page = page_model_.build(publisher_index, dev_rng);
        const auto emitted = apply_blocking(page, *device.blocker);
        const auto counts =
            emitter_.emit_page(page, emitted, t_ms, current_ip,
                               device.user_agent, sink, dev_rng);
        ++stats.pages;
        stats.http_requests += counts.http_requests;
        stats.https_flows += counts.https_requests;
        stats.bytes += counts.bytes;
      }
    }
  }

  // Ground truth for validation.
  stats.truth.reserve(devices.size());
  for (const auto& device : devices) {
    if (!device.is_browser) continue;
    BrowserTruth truth;
    truth.ip = device.ip;
    truth.user_agent = device.user_agent;
    truth.family = device.family;
    truth.mobile = device.mobile;
    truth.blocker = device.blocker_kind;
    truth.abp_config = device.abp_config;
    stats.truth.push_back(std::move(truth));
  }
  return stats;
}

}  // namespace adscope::sim
