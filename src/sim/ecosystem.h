// Synthetic ad ecosystem — the data gate substitute (DESIGN.md §1).
//
// The paper measures a proprietary residential trace against the live
// 2015 ad-scape. Neither is available, so we generate a closed world
// that exhibits the same structure: publishers with category-dependent
// page complexity and ad load; ad-tech companies (networks, exchanges
// with RTB, trackers, analytics) hosted across a Table-5-like AS mix
// (search giant, clouds, CDNs, dedicated ad ASes); an Adblock Plus
// update service; and the routing table mapping all their prefixes.
//
// Everything is derived deterministically from one seed. The filter-list
// generator (listgen.h) and the traffic models (page_model.h, rbn_sim.h,
// crawl_sim.h) all read this catalog, which is what makes ground-truth
// validation possible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netdb/abp_servers.h"
#include "netdb/asn_db.h"
#include "util/rng.h"

namespace adscope::sim {

/// Stand-in AS names follow the paper's Table 5 so bench output reads
/// side by side with it.
struct AsEntry {
  netdb::AsNumber number = 0;
  std::string name;
  netdb::Prefix prefix;
  /// Mean WAN RTT from the vantage point, microseconds (EU ~15 ms,
  /// US ~110 ms) — feeds the TCP-handshake model (§8.2).
  std::uint32_t base_rtt_us = 15000;
};

enum class CompanyRole : std::uint8_t {
  kAdNetwork,   // serves creatives (EasyList target)
  kAdExchange,  // runs auctions; RTB delay (EasyList target)
  kTracker,     // beacons/pixels (EasyPrivacy target)
  kAnalytics,   // page analytics (EasyPrivacy target)
  kCdn,         // serves ads AND regular content
};

struct AdCompany {
  std::string name;
  CompanyRole role = CompanyRole::kAdNetwork;
  std::vector<std::string> domains;  // first entry is the primary domain
  std::vector<netdb::IpV4> servers;
  netdb::AsNumber as_number = 0;
  bool rtb = false;              // auction delay on requests
  bool acceptable_ads = false;   // has an AA-whitelisted inventory path
  bool ghostery_known = false;   // present in the Ghostery database
  /// Relative traffic weight when publishers pick partners.
  double weight = 1.0;
};

enum class SiteCategory : std::uint8_t {
  kNews,
  kVideo,
  kShopping,
  kSocial,
  kSearch,
  kAdult,
  kFileSharing,
  kTech,
  kReference,
  kGames,
};

std::string_view to_string(SiteCategory category) noexcept;

struct Publisher {
  std::string domain;  // "news-17.example" — category readable from name
  SiteCategory category = SiteCategory::kNews;
  std::size_t rank = 0;  // 0 = most popular

  // Page composition.
  double content_objects_mean = 30;  // non-ad objects per page
  int ad_slots = 2;                  // display ads per page
  int tracker_count = 3;             // third-party beacons per page
  bool acceptable_ads = false;       // serves AA-compliant inventory
  bool https_main = false;           // landing page over HTTPS (opaque)
  bool own_ad_platform = false;      // first-party ad serving
  bool uses_webfonts = false;        // pulls fonts from the gstatic CDN

  std::vector<std::size_t> ad_partners;       // indices into companies
  std::vector<std::size_t> tracker_partners;  // indices into companies
  netdb::IpV4 server = 0;
  netdb::IpV4 cdn_server = 0;  // static assets host (CDN AS)
  netdb::AsNumber as_number = 0;
};

struct EcosystemOptions {
  std::size_t publishers = 3000;
  std::size_t trackers = 14;
  /// Zipf exponent for site popularity.
  double popularity_s = 0.9;
};

class Ecosystem {
 public:
  static Ecosystem generate(std::uint64_t seed, EcosystemOptions options = {});

  const std::vector<AsEntry>& ases() const noexcept { return ases_; }
  const std::vector<AdCompany>& companies() const noexcept {
    return companies_;
  }
  const std::vector<Publisher>& publishers() const noexcept {
    return publishers_;
  }

  const AsEntry& as_entry(netdb::AsNumber number) const;

  /// Routing table over all allocated prefixes.
  const netdb::AsnDatabase& asn_db() const noexcept { return asn_db_; }

  /// Adblock Plus update servers (the §3.2 indicator's target set).
  const netdb::AbpServerRegistry& abp_registry() const noexcept {
    return abp_registry_;
  }
  const std::vector<netdb::IpV4>& abp_servers() const noexcept {
    return abp_server_ips_;
  }

  /// Popularity sampler over publisher ranks.
  const util::ZipfSampler& popularity() const noexcept { return popularity_; }

  /// Client address for a household index (ISP access prefix).
  netdb::IpV4 client_ip(std::uint32_t household) const noexcept;

  /// Company index lookup by name (tests); SIZE_MAX when missing.
  std::size_t company_by_name(std::string_view name) const noexcept;

 private:
  Ecosystem() : popularity_(1, 1.0) {}

  std::vector<AsEntry> ases_;
  std::vector<AdCompany> companies_;
  std::vector<Publisher> publishers_;
  netdb::AsnDatabase asn_db_;
  netdb::AbpServerRegistry abp_registry_;
  std::vector<netdb::IpV4> abp_server_ips_;
  util::ZipfSampler popularity_;
  netdb::Prefix client_prefix_{};
};

}  // namespace adscope::sim
