// RbnSimulator — the residential broadband network trace substitute
// (paper §5, Table 2).
//
// Models a customer aggregation network: households behind NAT gateways,
// each multiplexing several devices (desktop browsers of the four §6.1
// families, mobile browsers, consoles, smart TVs, app-only agents) onto
// one IP. Browsers carry an ad-blocker configuration drawn from
// penetration rates consistent with the paper's findings; ad-blocker
// users' requests are pruned with the same production FilterEngine the
// analysis uses, and their Adblock Plus filter-list update flows appear
// as HTTPS connections to the update servers (indicator 2, §3.2).
//
// Activity follows the diurnal model; heavy-tailed per-device rates
// produce the paper's heavy-hitter population. Ground truth (which
// browser runs which blocker) is returned for validation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/browser_profile.h"
#include "sim/diurnal.h"
#include "sim/emitter.h"
#include "adblock/subscription.h"
#include "sim/listgen.h"
#include "trace/record.h"
#include "ua/user_agent.h"

namespace adscope::sim {

struct RbnOptions {
  std::string name = "RBN-2";
  std::uint32_t households = 600;
  std::uint64_t duration_s = 55'800;  // 15.5 h
  unsigned start_hour = 15;
  unsigned start_weekday = 1;  // Tuesday (2015-08-11)
  std::uint64_t start_unix_s = 1'439'305'200;
  std::uint32_t uplink_gbps = 10;
  double activity_scale = 1.0;
  /// Dynamic address assignment (§5): households are re-addressed every
  /// this many hours (0 = static). The paper notes IP-to-household
  /// association only holds for short traces — which is why it uses
  /// RBN-2 (15.5 h) for per-user analyses and RBN-1 (4 d) only for
  /// traffic characterization. Multi-day simulations reproduce that
  /// constraint.
  unsigned ip_reassignment_hours = 24;

  // Ad-blocker penetration. Adblock Plus installs cluster per household
  // (the same person configures all their browsers): a household is
  // "savvy" with `savvy_household_share` probability, and only then do
  // its browsers carry ABP at the per-family rates below. This yields
  // ~20% of households with ABP downloads while ~30% of *active*
  // Firefox/Chrome instances are ABP users, as the paper observes.
  double savvy_household_share = 0.37;
  double abp_firefox_chrome = 0.60;   // given a savvy household
  double abp_safari = 0.28;
  double abp_ie = 0.12;
  double abp_mobile = 0.10;
  double abp_baseline = 0.015;        // non-savvy households
  double ghostery_share = 0.04;
  /// Share of browsers whose category diet is ad-light (search,
  /// reference, streaming) — the paper's type-D explanation.
  double low_ad_diet_share = 0.25;
  /// Unused legacy knob kept for configuration compatibility; update
  /// timing now follows the real subscription schedule (soft expiry
  /// with uniformly backdated last-update instants).
  double abp_recent_update_share = 0.22;

  // Adblock Plus configuration mix (§6.3 findings).
  double abp_easyprivacy = 0.13;     // subscribe to EasyPrivacy
  double abp_aa_optout = 0.18;       // disable acceptable ads
  double abp_derivative = 0.60;      // add the language derivative
};

/// Presets matching the paper's two traces (scaled subscriber counts).
RbnOptions rbn1_options(std::uint32_t households = 250);
RbnOptions rbn2_options(std::uint32_t households = 600);

enum class BlockerKind : std::uint8_t { kNone, kAdblockPlus, kGhostery };

/// Ground truth per simulated browser, for validating the inference.
struct BrowserTruth {
  netdb::IpV4 ip = 0;
  std::string user_agent;
  ua::BrowserFamily family = ua::BrowserFamily::kNone;
  bool mobile = false;
  BlockerKind blocker = BlockerKind::kNone;
  ListSelection abp_config;  // meaningful when blocker == kAdblockPlus
  std::uint64_t pages = 0;
  std::uint64_t requests = 0;
};

struct RbnStats {
  std::uint64_t pages = 0;
  std::uint64_t http_requests = 0;
  std::uint64_t https_flows = 0;
  std::uint64_t bytes = 0;
  std::uint32_t devices = 0;
  std::uint32_t browsers = 0;
  std::uint32_t abp_browsers = 0;
  std::uint32_t abp_households = 0;
  std::vector<BrowserTruth> truth;
};

class RbnSimulator {
 public:
  RbnSimulator(const Ecosystem& ecosystem, const GeneratedLists& lists,
               std::uint64_t seed);

  /// Generate a trace into `sink` (meta first). Returns ground truth.
  RbnStats simulate(const RbnOptions& options, trace::TraceSink& sink) const;

 private:
  /// Index into the pre-built ABP engine pool (EP x AA x derivative).
  static std::size_t config_bits(const ListSelection& selection) noexcept {
    return (selection.easyprivacy ? 1U : 0U) |
           (selection.acceptable_ads ? 2U : 0U) |
           (selection.derivative ? 4U : 0U);
  }

  const Ecosystem& ecosystem_;
  const GeneratedLists& lists_;
  PageModel page_model_;
  TrafficEmitter emitter_;
  std::uint64_t seed_;

  // Blockers shared across devices: all 8 ABP configurations plus the
  // pass-through and Ghostery instances.
  std::vector<std::unique_ptr<Blocker>> abp_pool_;
  NoBlocker no_blocker_;
  std::unique_ptr<Blocker> ghostery_;
  // Parsed list metadata (expiry, size) for the subscription schedule.
  adblock::FilterList easylist_meta_;
  adblock::FilterList derivative_meta_;
  adblock::FilterList easyprivacy_meta_;
  adblock::FilterList acceptable_ads_meta_;
};

}  // namespace adscope::sim
