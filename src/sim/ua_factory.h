// User-Agent string synthesis for the RBN population.
//
// Produces realistic 2015-era strings per browser family / device class
// with enough version variety that the heavy-hitter annotation step
// (§6.1) faces a nontrivial string population.
#pragma once

#include <string>

#include "ua/user_agent.h"
#include "util/rng.h"

namespace adscope::sim {

std::string make_desktop_ua(ua::BrowserFamily family, util::Rng& rng);
std::string make_mobile_ua(util::Rng& rng);
std::string make_console_ua(util::Rng& rng);
std::string make_smarttv_ua(util::Rng& rng);
std::string make_app_ua(util::Rng& rng);

}  // namespace adscope::sim
