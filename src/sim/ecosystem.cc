#include "sim/ecosystem.h"

#include <algorithm>
#include <iterator>
#include <stdexcept>

#include "util/strings.h"

namespace adscope::sim {

namespace {

// AS identifiers; values are arbitrary but stable.
enum AsId : netdb::AsNumber {
  kAsGoogle = 15169,
  kAsAmazonEc2 = 14618,
  kAsAkamai = 20940,
  kAsAmazonAws = 16509,
  kAsHetzner = 24940,
  kAsAppNexus = 29990,
  kAsMyLoc = 24961,
  kAsSoftLayer = 36351,
  kAsAol = 1668,
  kAsCriteo = 44788,
  kAsLiveRail = 55555,
  kAsMopub = 55556,
  kAsRubicon = 55557,
  kAsPubmatic = 55558,
  kAsEuHosting1 = 60001,
  kAsEuHosting2 = 60002,
  kAsUsHosting = 60003,
  kAsFastContent = 60004,
  kAsAdblockPlus = 60005,
  kAsIsp = 60006,
};

// Deterministic /16 slot per AS inside 10.0.0.0/8.
std::uint8_t as_slot(netdb::AsNumber as_number) {
  switch (as_number) {
    case kAsGoogle: return 1;
    case kAsAmazonEc2: return 2;
    case kAsAkamai: return 3;
    case kAsAmazonAws: return 4;
    case kAsHetzner: return 5;
    case kAsAppNexus: return 6;
    case kAsMyLoc: return 7;
    case kAsSoftLayer: return 8;
    case kAsAol: return 9;
    case kAsCriteo: return 10;
    case kAsLiveRail: return 11;
    case kAsMopub: return 12;
    case kAsRubicon: return 13;
    case kAsPubmatic: return 14;
    case kAsEuHosting1: return 15;
    case kAsEuHosting2: return 16;
    case kAsUsHosting: return 17;
    case kAsFastContent: return 18;
    case kAsAdblockPlus: return 19;
    case kAsIsp: return 200;
  }
  return 250;
}

netdb::IpV4 as_base(netdb::AsNumber as_number) {
  return (netdb::IpV4{10} << 24) | (netdb::IpV4{as_slot(as_number)} << 16);
}

struct CategoryProfile {
  SiteCategory category;
  double share;           // of all publishers
  double objects_mean;    // non-ad objects per page
  int ad_slots;
  int trackers;
  double aa_share;        // publishers with acceptable-ads inventory
  double https_share;     // landing page over HTTPS
};

constexpr CategoryProfile kCategoryProfiles[] = {
    {SiteCategory::kNews, 0.18, 60, 3, 4, 0.40, 0.05},
    {SiteCategory::kVideo, 0.12, 25, 1, 3, 0.50, 0.05},
    {SiteCategory::kShopping, 0.15, 45, 2, 3, 0.45, 0.10},
    {SiteCategory::kSocial, 0.06, 40, 1, 3, 0.30, 0.50},
    {SiteCategory::kSearch, 0.04, 12, 0, 1, 0.70, 0.60},
    {SiteCategory::kAdult, 0.08, 35, 2, 2, 0.00, 0.05},
    {SiteCategory::kFileSharing, 0.06, 20, 2, 2, 0.10, 0.05},
    {SiteCategory::kTech, 0.10, 40, 2, 3, 0.50, 0.10},
    {SiteCategory::kReference, 0.12, 25, 0, 2, 0.40, 0.10},
    {SiteCategory::kGames, 0.09, 35, 2, 3, 0.30, 0.05},
};

const char* category_slug(SiteCategory category) {
  switch (category) {
    case SiteCategory::kNews: return "news";
    case SiteCategory::kVideo: return "video";
    case SiteCategory::kShopping: return "shop";
    case SiteCategory::kSocial: return "social";
    case SiteCategory::kSearch: return "search";
    case SiteCategory::kAdult: return "adult";
    case SiteCategory::kFileSharing: return "files";
    case SiteCategory::kTech: return "tech";
    case SiteCategory::kReference: return "wiki";
    case SiteCategory::kGames: return "games";
  }
  return "site";
}

}  // namespace

std::string_view to_string(SiteCategory category) noexcept {
  switch (category) {
    case SiteCategory::kNews: return "news";
    case SiteCategory::kVideo: return "video streaming";
    case SiteCategory::kShopping: return "shopping";
    case SiteCategory::kSocial: return "social";
    case SiteCategory::kSearch: return "search";
    case SiteCategory::kAdult: return "adult";
    case SiteCategory::kFileSharing: return "file sharing";
    case SiteCategory::kTech: return "technology/Internet";
    case SiteCategory::kReference: return "reference";
    case SiteCategory::kGames: return "games";
  }
  return "mixed";
}

Ecosystem Ecosystem::generate(std::uint64_t seed, EcosystemOptions options) {
  Ecosystem eco;
  util::Rng rng(seed ^ 0xADC0DEULL);

  // --- Autonomous systems ---------------------------------------------
  struct AsSpec {
    netdb::AsNumber number;
    const char* name;
    std::uint32_t rtt_us;
  };
  const AsSpec as_specs[] = {
      {kAsGoogle, "Google", 18000},      {kAsAmazonEc2, "Am.-EC2", 95000},
      {kAsAkamai, "Akamai", 8000},       {kAsAmazonAws, "Am.-AWS", 100000},
      {kAsHetzner, "Hetzner", 12000},    {kAsAppNexus, "AppNexus", 90000},
      {kAsMyLoc, "MyLoc", 10000},        {kAsSoftLayer, "SoftLayer", 105000},
      {kAsAol, "AOL", 95000},            {kAsCriteo, "Criteo", 25000},
      {kAsLiveRail, "Liverail", 95000},  {kAsMopub, "Mopub", 100000},
      {kAsRubicon, "Rubicon", 98000},    {kAsPubmatic, "Pubmatic", 102000},
      {kAsEuHosting1, "EU-Host-1", 15000},
      {kAsEuHosting2, "EU-Host-2", 14000},
      {kAsUsHosting, "US-Host-1", 110000},
      {kAsFastContent, "FastContent", 9000},
      {kAsAdblockPlus, "AdblockPlus", 20000},
      {kAsIsp, "ISP-RBN", 2000},
  };
  for (const auto& spec : as_specs) {
    AsEntry entry;
    entry.number = spec.number;
    entry.name = spec.name;
    entry.prefix = netdb::Prefix{as_base(spec.number), 16};
    entry.base_rtt_us = spec.rtt_us;
    eco.ases_.push_back(entry);
    eco.asn_db_.add_route(entry.prefix, entry.number);
    eco.asn_db_.set_as_info(entry.number, entry.name);
  }
  eco.client_prefix_ = netdb::Prefix{as_base(kAsIsp), 16};

  // --- Ad-tech companies ------------------------------------------------
  // Per-AS server-IP allocator.
  std::vector<std::uint32_t> next_host(256, 1);
  auto alloc_ip = [&](netdb::AsNumber as_number) {
    const auto slot = as_slot(as_number);
    return as_base(as_number) + next_host[slot]++;
  };
  auto add_company = [&](std::string name, CompanyRole role,
                         std::vector<std::string> domains,
                         netdb::AsNumber as_number, int servers, double weight,
                         bool rtb, bool aa, bool ghostery) {
    AdCompany company;
    company.name = std::move(name);
    company.role = role;
    company.domains = std::move(domains);
    company.as_number = as_number;
    company.weight = weight;
    company.rtb = rtb;
    company.acceptable_ads = aa;
    company.ghostery_known = ghostery;
    for (int i = 0; i < servers; ++i) {
      company.servers.push_back(alloc_ip(as_number));
    }
    eco.companies_.push_back(std::move(company));
    return eco.companies_.size() - 1;
  };

  using Role = CompanyRole;
  // Search giant: networks + exchange + analytics + static CDN.
  add_company("GoogleAds", Role::kAdNetwork,
              {"adserv.googlesim.com", "pagead2.googlesim.com"}, kAsGoogle, 40,
              3.0, false, true, true);
  add_company("DoubleClick", Role::kAdExchange,
              {"doubleclick-sim.com", "ad.doubleclick-sim.com"}, kAsGoogle, 30,
              2.4, true, true, true);
  add_company("GoogleAnalytics", Role::kAnalytics,
              {"analytics.googlesim.com"}, kAsGoogle, 20, 4.0, false, false,
              true);
  add_company("GoogleSyndication", Role::kAdNetwork,
              {"syndication.googlesim.com"}, kAsGoogle, 20, 1.5, false, true,
              true);
  add_company("GStatic", Role::kCdn,
              {"gstaticsim.com", "fonts.gstaticsim.com"}, kAsGoogle, 20, 2.0,
              false, true, false);
  {
    // Shared Google front-ends: the API/content service answers from the
    // same VIPs as the ad services, so those servers serve a *mix* of ad
    // and regular objects (paper §8.1: 50.7% of Google objects are ads).
    const auto apis = add_company("GoogleApis", Role::kCdn,
                                  {"apis.googlesim.com"}, kAsGoogle, 0, 0.0,
                                  false, false, false);
    auto& shared = eco.companies_[apis].servers;
    shared = eco.companies_[0].servers;  // GoogleAds
    shared.insert(shared.end(), eco.companies_[1].servers.begin(),
                  eco.companies_[1].servers.end());  // DoubleClick
  }
  // CDNs serving both content and ads.
  add_company("AkamaiCDN", Role::kCdn,
              {"akamaized-sim.net", "cache.akamaized-sim.net"}, kAsAkamai, 60,
              4.0, false, false, false);
  add_company("FastContent", Role::kCdn, {"fastcontent-sim.net"},
              kAsFastContent, 25, 2.0, false, false, false);
  // Cloud-hosted ad tech.
  add_company("BannerStack", Role::kAdNetwork, {"bannerstack-sim.com"},
              kAsAmazonEc2, 12, 1.7, false, false, true);
  add_company("OpenAdX", Role::kAdExchange, {"openadx-sim.com"}, kAsAmazonEc2,
              8, 1.3, true, false, true);
  add_company("AdFlow", Role::kAdNetwork, {"adflow-sim.com"}, kAsAmazonAws, 10,
              1.9, false, true, true);
  // EU hosting ad tech.
  add_company("EuroAds", Role::kAdNetwork, {"euroads-sim.de"}, kAsHetzner, 8,
              1.6, false, true, true);
  add_company("RheinAds", Role::kAdNetwork, {"rheinads-sim.de"}, kAsMyLoc, 6,
              1.4, false, false, false);
  // Dedicated ad-tech ASes.
  add_company("AppNexus", Role::kAdExchange, {"appnexus-sim.com"}, kAsAppNexus,
              10, 1.8, true, false, true);
  add_company("Criteo", Role::kAdNetwork,
              {"criteo-sim.com", "cas.criteo-sim.com"}, kAsCriteo, 8, 1.7,
              true, false, true);
  add_company("AOLAds", Role::kAdNetwork, {"adtech-aolsim.com"}, kAsAol, 8,
              1.6, false, false, true);
  add_company("LiveRail", Role::kAdNetwork, {"liverail-sim.com"}, kAsLiveRail,
              2, 1.2, false, false, true);
  add_company("Mopub", Role::kAdExchange, {"mopub-sim.com"}, kAsMopub, 4, 0.7,
              true, false, true);
  add_company("Rubicon", Role::kAdExchange, {"rubicon-sim.com"}, kAsRubicon, 4,
              0.8, true, false, true);
  add_company("Pubmatic", Role::kAdExchange, {"pubmatic-sim.com"}, kAsPubmatic,
              4, 0.7, true, false, true);
  // Trackers (EasyPrivacy targets) spread across clouds & SoftLayer.
  const netdb::AsNumber tracker_ases[] = {kAsSoftLayer, kAsAmazonEc2,
                                          kAsAmazonAws, kAsUsHosting,
                                          kAsEuHosting2};
  static const char* kTrackerNames[] = {
      "PixelLayer", "BeaconGrid", "StatTally",   "AddThat",  "ClickEcho",
      "UserTrace",  "HitCount",   "WebMetric",   "TagSpark", "AudiencePulse",
      "VisitLog",   "SessionCam", "FunnelPeek",  "HeatSense", "PathTrace",
      "CohortLab",  "RefScan",    "ViewStamp",   "PingMark",  "DataSift"};
  const std::size_t tracker_count =
      std::min(options.trackers, std::size(kTrackerNames));
  for (std::size_t i = 0; i < tracker_count; ++i) {
    const auto as_number = tracker_ases[i % std::size(tracker_ases)];
    std::string base = kTrackerNames[i];
    std::string domain;
    for (char c : base) domain.push_back(util::ascii_lower(c));
    domain += "-sim.com";
    // A couple of analytics providers bought their way onto the
    // acceptable-ads whitelist — the paper's EasyPrivacy-overlap (§7.3).
    const bool tracker_aa = i == 4;
    add_company(base, i % 3 == 0 ? Role::kAnalytics : Role::kTracker,
                {domain}, as_number, 3 + static_cast<int>(i % 4),
                0.5 + 0.2 * static_cast<double>(i % 5),
                false, tracker_aa, rng.chance(0.85));
  }

  // --- Adblock Plus update service --------------------------------------
  for (int i = 0; i < 3; ++i) {
    const auto ip = alloc_ip(kAsAdblockPlus);
    eco.abp_server_ips_.push_back(ip);
    eco.abp_registry_.add_server(ip);
  }

  // --- Publishers --------------------------------------------------------
  std::vector<double> category_weights;
  for (const auto& profile : kCategoryProfiles) {
    category_weights.push_back(profile.share);
  }
  // Eligible partners by role.
  std::vector<std::size_t> ad_companies;
  std::vector<std::size_t> tracker_companies;
  std::size_t analytics_company = 0;
  for (std::size_t i = 0; i < eco.companies_.size(); ++i) {
    const auto role = eco.companies_[i].role;
    if (role == Role::kAdNetwork || role == Role::kAdExchange) {
      ad_companies.push_back(i);
    } else if (role == Role::kTracker || role == Role::kAnalytics) {
      tracker_companies.push_back(i);
      if (eco.companies_[i].name == "GoogleAnalytics") analytics_company = i;
    }
  }
  std::vector<double> ad_weights;
  for (const auto idx : ad_companies) {
    ad_weights.push_back(eco.companies_[idx].weight);
  }

  std::vector<std::size_t> per_category_counter(std::size(kCategoryProfiles),
                                                0);
  eco.publishers_.reserve(options.publishers);
  for (std::size_t rank = 0; rank < options.publishers; ++rank) {
    const auto cat_index = rng.weighted(category_weights);
    const auto& profile = kCategoryProfiles[cat_index];
    Publisher pub;
    pub.category = profile.category;
    pub.rank = rank;
    pub.domain = std::string(category_slug(profile.category)) + "-" +
                 std::to_string(per_category_counter[cat_index]++) +
                 ".example";
    pub.content_objects_mean =
        std::max(5.0, rng.normal(profile.objects_mean,
                                 profile.objects_mean * 0.3));
    pub.ad_slots = std::max(
        0, static_cast<int>(rng.range(profile.ad_slots - 1,
                                      profile.ad_slots + 1)));
    pub.tracker_count = std::max(
        0, static_cast<int>(rng.range(profile.trackers - 1,
                                      profile.trackers + 1)));
    pub.acceptable_ads = rng.chance(profile.aa_share);
    pub.https_main = rng.chance(profile.https_share);
    pub.uses_webfonts = rng.chance(0.40);
    // A couple of popular news sites whitelist nothing (§7.3's surprise).
    if (profile.category == SiteCategory::kNews && rank < 50) {
      pub.acceptable_ads = rng.chance(0.5);
    }
    // One big tech site runs its own whitelisted ad platform (§7.3).
    if (profile.category == SiteCategory::kTech &&
        per_category_counter[cat_index] == 1) {
      pub.own_ad_platform = true;
      pub.acceptable_ads = true;
    }

    // Hosting.
    const double host_draw = rng.uniform();
    netdb::AsNumber host_as = kAsEuHosting1;
    if (host_draw < 0.35) {
      host_as = kAsEuHosting1;
    } else if (host_draw < 0.60) {
      host_as = kAsEuHosting2;
    } else if (host_draw < 0.75) {
      host_as = kAsUsHosting;
    } else if (host_draw < 0.87) {
      host_as = kAsAkamai;
    } else if (host_draw < 0.95) {
      host_as = kAsHetzner;
    } else {
      host_as = kAsMyLoc;
    }
    pub.as_number = host_as;
    pub.server = alloc_ip(host_as);
    pub.cdn_server =
        rng.chance(0.7) ? alloc_ip(kAsAkamai) : alloc_ip(kAsFastContent);

    // Partners.
    const int partner_count = static_cast<int>(rng.range(2, 4));
    for (int i = 0; i < partner_count; ++i) {
      pub.ad_partners.push_back(ad_companies[rng.weighted(ad_weights)]);
    }
    const int tracker_partners = std::max(
        1, static_cast<int>(rng.range(1, std::max(1, pub.tracker_count))));
    // The dominant analytics provider is on ~70% of sites, not all.
    int extra = tracker_partners;
    if (rng.chance(0.7)) {
      pub.tracker_partners.push_back(analytics_company);
      --extra;
    }
    for (int i = 0; i <= extra; ++i) {
      pub.tracker_partners.push_back(
          tracker_companies[rng.below(tracker_companies.size())]);
    }
    eco.publishers_.push_back(std::move(pub));
  }

  eco.popularity_ =
      util::ZipfSampler(eco.publishers_.size(), options.popularity_s);
  return eco;
}

const AsEntry& Ecosystem::as_entry(netdb::AsNumber number) const {
  for (const auto& entry : ases_) {
    if (entry.number == number) return entry;
  }
  throw std::out_of_range("unknown AS " + std::to_string(number));
}

netdb::IpV4 Ecosystem::client_ip(std::uint32_t household) const noexcept {
  // Skip .0 hosts to keep addresses plausible.
  return client_prefix_.network + 1 + household;
}

std::size_t Ecosystem::company_by_name(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < companies_.size(); ++i) {
    if (companies_[i].name == name) return i;
  }
  return SIZE_MAX;
}

}  // namespace adscope::sim
