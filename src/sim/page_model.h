// Page-load model: what a browser's network activity looks like when it
// opens a publisher page in the synthetic ecosystem.
//
// A page load is a request *tree* (parent links encode trigger
// causality): main document -> content objects, trackers and ad chains
// (ad-network script -> RTB exchange hop -> creative -> impression
// beacon). The model injects the measurement imperfections the paper's
// methodology has to survive:
//   * Content-Type mismatches (scripts served as text/html — §4.2's
//     false-positive source) and absent Content-Types,
//   * creative fetches behind 302 redirects whose follow-up request
//     carries no Referer (exercises Location patching, §3.1),
//   * page URLs embedded in tracker/bid query strings (exercises
//     embedded-URL extraction and query normalization),
//   * HTTPS objects that are invisible to the HTTP pipeline.
//
// Every request carries ground-truth intent so validation tests and the
// method-evaluation bench (Table 1) can score the passive classifier.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "http/mime.h"
#include "sim/ecosystem.h"
#include "util/rng.h"

namespace adscope::sim {

/// Ground truth for one simulated request.
enum class Intent : std::uint8_t {
  kContent,  // regular page content
  kAd,       // advertisement delivery (EasyList territory)
  kAaAd,     // acceptable-ads inventory (whitelisted by default config)
  kTracker,  // tracking/analytics (EasyPrivacy territory)
};

struct SimRequest {
  int parent = -1;       // index into the page's request vector
  double offset_ms = 0;  // since page start

  std::string url;      // absolute
  std::string referer;  // "" = absent
  std::string payload;  // document HTML (payload mode only)
  http::RequestType true_type = http::RequestType::kOther;
  std::string reported_mime;  // response Content-Type ("" = absent)
  std::uint64_t size = 0;
  std::uint16_t status = 200;
  std::string location;  // redirect target for 3xx

  netdb::IpV4 server_ip = 0;
  netdb::AsNumber as_number = 0;
  bool https = false;

  Intent intent = Intent::kContent;
  bool rtb = false;                  // auction delay applies
  std::size_t company = SIZE_MAX;    // ecosystem company, when applicable
};

struct PageLoad {
  std::size_t publisher = 0;
  std::string page_url;
  std::vector<SimRequest> requests;  // [0] is the main document
  /// Ground truth: text advertisements embedded in the main HTML. They
  /// cause no request — only payload-mode analysis can see them (§10).
  int hidden_text_ads = 0;
};

struct PageModelOptions {
  double mime_mismatch_rate = 0.04;
  double missing_mime_rate = 0.08;
  double creative_redirect_rate = 0.15;
  double https_object_share = 0.06;
  double quality_script_rate = 0.15;  // EL-exception scripts per ad chain
  /// Attach the synthesized document HTML to main-document requests
  /// (the §10 payload-mode extension). Off by default: the paper's
  /// monitor cannot capture payloads.
  bool generate_payloads = false;
};

class PageModel {
 public:
  PageModel(const Ecosystem& ecosystem, PageModelOptions options = {});

  /// Build the unblocked request tree for one visit.
  PageLoad build(std::size_t publisher_index, util::Rng& rng) const;

  const PageModelOptions& options() const noexcept { return options_; }

 private:
  int add_content_object(PageLoad& page, util::Rng& rng,
                         const Publisher& publisher) const;
  void add_tracker(PageLoad& page, util::Rng& rng,
                   const Publisher& publisher) const;
  void add_ad_chain(PageLoad& page, util::Rng& rng, const Publisher& publisher,
                    int slot) const;
  void add_font(PageLoad& page, util::Rng& rng) const;

  int push(PageLoad& page, SimRequest request) const;
  void synthesize_payload(PageLoad& page, util::Rng& rng,
                          const Publisher& publisher) const;
  netdb::IpV4 pick_server(const AdCompany& company, util::Rng& rng) const;
  void maybe_corrupt_mime(SimRequest& request, util::Rng& rng) const;
  std::string cdn_host_for(const Publisher& publisher) const;
  void add_google_api(PageLoad& page, util::Rng& rng) const;
  void add_first_party_promo(PageLoad& page, util::Rng& rng,
                             const Publisher& publisher) const;

  const Ecosystem& ecosystem_;
  PageModelOptions options_;
  std::size_t gstatic_ = SIZE_MAX;
  std::size_t google_apis_ = SIZE_MAX;
};

}  // namespace adscope::sim
