// Filter-list generation — the EasyList / EasyPrivacy / acceptable-ads
// substitute (DESIGN.md §1).
//
// Lists are rendered as real ABP list *text* and parsed back through the
// production FilterList parser, so the generator exercises the same code
// a live subscription would. Rules are derived from the ecosystem
// catalog, which gives us ground truth for validation, and include the
// anomalies §7.3 documents (overly-general acceptable-ads rules that
// whitelist non-ad traffic).
#pragma once

#include <string>
#include <unordered_map>

#include "adblock/engine.h"
#include "sim/ecosystem.h"

namespace adscope::sim {

struct GeneratedLists {
  std::string easylist;
  std::string easylist_derivative;  // "EasyList Germany" style customization
  std::string easyprivacy;
  std::string acceptable_ads;  // "non-intrusive advertisements" whitelist
};

GeneratedLists generate_lists(const Ecosystem& ecosystem);

/// Which subscriptions an engine should activate.
struct ListSelection {
  bool easylist = true;
  bool derivative = false;
  bool easyprivacy = false;
  bool acceptable_ads = true;  // enabled by default, like Adblock Plus
};

/// Parse the generated lists into a priority-ordered engine (EasyList,
/// derivative, EasyPrivacy, acceptable-ads). Disabled lists are skipped
/// entirely.
adblock::FilterEngine make_engine(const GeneratedLists& lists,
                                  const ListSelection& selection);

/// Ghostery's (proprietary) tracker database, reconstructed over the
/// synthetic ecosystem: domain suffix -> category. Coverage is partial —
/// only companies with `ghostery_known` appear — which is what makes the
/// Ghostery rows of Table 1 differ from the Adblock Plus rows.
class GhosteryDb {
 public:
  enum class Category : std::uint8_t {
    kAdvertising,
    kAnalytics,
    kBeacon,
    kPrivacy,
  };

  struct Selection {
    bool advertising = false;
    bool analytics = false;
    bool beacons = false;
    bool privacy = false;

    static Selection ads() { return {true, false, false, false}; }
    static Selection privacy_mode() { return {false, true, true, true}; }
    static Selection paranoia() { return {true, true, true, true}; }
  };

  void add(std::string domain, Category category);

  /// Does a request to `host` fall in a blocked category?
  bool blocks(std::string_view host, const Selection& selection) const;

  std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::unordered_map<std::string, Category> entries_;
};

GhosteryDb build_ghostery_db(const Ecosystem& ecosystem);

}  // namespace adscope::sim
