// CrawlSimulator — the §4 active-measurement substitute.
//
// Reproduces the instrumented-browser experiment: for each of the top-N
// sites (the "Alexa top 1K" of the synthetic world) and each §4.1
// browser profile, load the page with an empty cache and capture the
// resulting header trace, remembering per-visit transaction ranges so
// Figure 2's resampling can score individual page loads.
#pragma once

#include <memory>
#include <vector>

#include "sim/browser_profile.h"
#include "sim/emitter.h"
#include "sim/listgen.h"
#include "trace/record.h"

namespace adscope::sim {

struct CrawlVisit {
  std::size_t publisher = 0;
  // Range into the crawl trace's http() vector.
  std::size_t first_txn = 0;
  std::size_t txn_count = 0;
  std::uint64_t https_requests = 0;
};

struct CrawlResult {
  BrowserMode mode = BrowserMode::kVanilla;
  trace::MemoryTrace trace;
  std::vector<CrawlVisit> visits;
  std::uint64_t http_requests = 0;
  std::uint64_t https_requests = 0;
};

class CrawlSimulator {
 public:
  CrawlSimulator(const Ecosystem& ecosystem, const GeneratedLists& lists,
                 std::uint64_t seed);

  /// Crawl the `top_n` most popular sites under one profile. The same
  /// seed yields the same page composition across profiles, so profile
  /// differences are purely due to blocking — like the paper's repeated
  /// fetches of identical URLs.
  CrawlResult crawl(BrowserMode mode, std::size_t top_n) const;

 private:
  const Ecosystem& ecosystem_;
  const GeneratedLists& lists_;
  PageModel page_model_;
  TrafficEmitter emitter_;
  std::uint64_t seed_;
};

}  // namespace adscope::sim
