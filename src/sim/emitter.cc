#include "sim/emitter.h"

#include <algorithm>

#include "http/url.h"

namespace adscope::sim {

std::uint32_t TrafficEmitter::tcp_handshake_us(netdb::AsNumber as_number,
                                               util::Rng& rng) const {
  std::uint32_t base = 15000;
  for (const auto& entry : ecosystem_.ases()) {
    if (entry.number == as_number) {
      base = entry.base_rtt_us;
      break;
    }
  }
  const double jitter = rng.uniform(0.85, 1.35);
  return static_cast<std::uint32_t>(static_cast<double>(base) * jitter);
}

std::uint32_t TrafficEmitter::think_time_us(const SimRequest& request,
                                            util::Rng& rng) const {
  if (request.rtb) {
    // Auction: exchanges wait ~100-150 ms before closing (§8.2).
    return static_cast<std::uint32_t>(
        std::max(60000.0, rng.normal(120000.0, 18000.0)));
  }
  const bool ad = request.intent != Intent::kContent;
  const double regime = rng.uniform();
  if (ad) {
    if (regime < 0.40) return static_cast<std::uint32_t>(rng.exponential(1200.0));
    if (regime < 0.78) {
      return static_cast<std::uint32_t>(rng.normal(10000.0, 2500.0));
    }
    // Back-office fetch / delayed decisioning.
    return static_cast<std::uint32_t>(
        std::max(70000.0, rng.normal(125000.0, 22000.0)));
  }
  if (regime < 0.80) return static_cast<std::uint32_t>(rng.exponential(1000.0));
  if (regime < 0.95) {
    return static_cast<std::uint32_t>(rng.normal(9000.0, 2500.0));
  }
  return static_cast<std::uint32_t>(std::max(
      40000.0, rng.normal(110000.0, 30000.0)));  // distant origin fetch
}

EmitCounts TrafficEmitter::emit_page(const PageLoad& page,
                                     const std::vector<bool>& emitted,
                                     std::uint64_t start_ms,
                                     netdb::IpV4 client_ip,
                                     const std::string& user_agent,
                                     trace::TraceSink& sink,
                                     util::Rng& rng) const {
  EmitCounts counts;
  for (std::size_t i = 0; i < page.requests.size(); ++i) {
    if (!emitted[i]) continue;
    const SimRequest& request = page.requests[i];
    const auto timestamp =
        start_ms + static_cast<std::uint64_t>(std::max(0.0, request.offset_ms));

    if (request.https) {
      trace::TlsFlow flow;
      flow.timestamp_ms = timestamp;
      flow.client_ip = client_ip;
      flow.server_ip = request.server_ip;
      flow.server_port = 443;
      flow.bytes = request.size + 2048;  // TLS + header overhead
      sink.on_tls(flow);
      ++counts.https_requests;
      continue;
    }

    const auto url = http::Url::parse(request.url);
    if (!url) continue;

    trace::HttpTransaction txn;
    txn.timestamp_ms = timestamp;
    txn.client_ip = client_ip;
    txn.server_ip = request.server_ip;
    txn.server_port = 80;
    txn.status_code = request.status;
    txn.host = url->host();
    txn.uri = url->path() +
              (url->query().empty() ? "" : "?" + url->query());
    txn.referer = request.referer;
    // Browsers do not leak HTTPS referers to HTTP targets.
    if (!txn.referer.empty() &&
        txn.referer.compare(0, 8, "https://") == 0) {
      txn.referer.clear();
    }
    txn.user_agent = user_agent;
    txn.content_type = request.reported_mime;
    txn.location = request.location;
    txn.content_length = request.size;
    txn.payload = request.payload;
    txn.tcp_handshake_us = tcp_handshake_us(request.as_number, rng);
    txn.http_handshake_us = txn.tcp_handshake_us + think_time_us(request, rng);
    sink.on_http(txn);
    ++counts.http_requests;
    counts.bytes += request.size;
  }
  return counts;
}

}  // namespace adscope::sim
