# Empty compiler generated dependencies file for bench_table5_asn.
# This may be replaced when dependencies are built.
