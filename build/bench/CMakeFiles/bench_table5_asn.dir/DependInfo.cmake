
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table5_asn.cpp" "bench/CMakeFiles/bench_table5_asn.dir/bench_table5_asn.cpp.o" "gcc" "bench/CMakeFiles/bench_table5_asn.dir/bench_table5_asn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/adscope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adscope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/adblock/CMakeFiles/adscope_adblock.dir/DependInfo.cmake"
  "/root/repo/build/src/analyzer/CMakeFiles/adscope_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/adscope_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/adscope_html.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/adscope_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/ua/CMakeFiles/adscope_ua.dir/DependInfo.cmake"
  "/root/repo/build/src/netdb/CMakeFiles/adscope_netdb.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/adscope_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/adscope_http.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
