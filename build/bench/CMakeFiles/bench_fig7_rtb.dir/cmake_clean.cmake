file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_rtb.dir/bench_fig7_rtb.cpp.o"
  "CMakeFiles/bench_fig7_rtb.dir/bench_fig7_rtb.cpp.o.d"
  "bench_fig7_rtb"
  "bench_fig7_rtb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_rtb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
