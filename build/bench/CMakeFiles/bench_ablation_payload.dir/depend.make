# Empty dependencies file for bench_ablation_payload.
# This may be replaced when dependencies are built.
