file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_payload.dir/bench_ablation_payload.cpp.o"
  "CMakeFiles/bench_ablation_payload.dir/bench_ablation_payload.cpp.o.d"
  "bench_ablation_payload"
  "bench_ablation_payload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
