# Empty compiler generated dependencies file for bench_table1_active_crawl.
# This may be replaced when dependencies are built.
