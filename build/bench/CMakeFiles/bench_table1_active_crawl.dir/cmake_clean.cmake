file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_active_crawl.dir/bench_table1_active_crawl.cpp.o"
  "CMakeFiles/bench_table1_active_crawl.dir/bench_table1_active_crawl.cpp.o.d"
  "bench_table1_active_crawl"
  "bench_table1_active_crawl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_active_crawl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
