# Empty dependencies file for bench_fig3_user_heatmap.
# This may be replaced when dependencies are built.
