# Empty compiler generated dependencies file for bench_fig6_object_sizes.
# This may be replaced when dependencies are built.
