file(REMOVE_RECURSE
  "CMakeFiles/bench_sec71_category_mix.dir/bench_sec71_category_mix.cpp.o"
  "CMakeFiles/bench_sec71_category_mix.dir/bench_sec71_category_mix.cpp.o.d"
  "bench_sec71_category_mix"
  "bench_sec71_category_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec71_category_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
