# Empty compiler generated dependencies file for bench_sec71_category_mix.
# This may be replaced when dependencies are built.
