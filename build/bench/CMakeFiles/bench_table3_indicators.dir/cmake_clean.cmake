file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_indicators.dir/bench_table3_indicators.cpp.o"
  "CMakeFiles/bench_table3_indicators.dir/bench_table3_indicators.cpp.o.d"
  "bench_table3_indicators"
  "bench_table3_indicators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_indicators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
