# Empty dependencies file for bench_table3_indicators.
# This may be replaced when dependencies are built.
