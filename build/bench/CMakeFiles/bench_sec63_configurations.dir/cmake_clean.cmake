file(REMOVE_RECURSE
  "CMakeFiles/bench_sec63_configurations.dir/bench_sec63_configurations.cpp.o"
  "CMakeFiles/bench_sec63_configurations.dir/bench_sec63_configurations.cpp.o.d"
  "bench_sec63_configurations"
  "bench_sec63_configurations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec63_configurations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
