# Empty dependencies file for bench_sec63_configurations.
# This may be replaced when dependencies are built.
