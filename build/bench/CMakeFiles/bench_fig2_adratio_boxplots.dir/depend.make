# Empty dependencies file for bench_fig2_adratio_boxplots.
# This may be replaced when dependencies are built.
