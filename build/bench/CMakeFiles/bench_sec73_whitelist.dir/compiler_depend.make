# Empty compiler generated dependencies file for bench_sec73_whitelist.
# This may be replaced when dependencies are built.
