file(REMOVE_RECURSE
  "CMakeFiles/bench_sec73_whitelist.dir/bench_sec73_whitelist.cpp.o"
  "CMakeFiles/bench_sec73_whitelist.dir/bench_sec73_whitelist.cpp.o.d"
  "bench_sec73_whitelist"
  "bench_sec73_whitelist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec73_whitelist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
