file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_browser_ecdf.dir/bench_fig4_browser_ecdf.cpp.o"
  "CMakeFiles/bench_fig4_browser_ecdf.dir/bench_fig4_browser_ecdf.cpp.o.d"
  "bench_fig4_browser_ecdf"
  "bench_fig4_browser_ecdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_browser_ecdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
