# Empty dependencies file for bench_ablation_referrer_repairs.
# This may be replaced when dependencies are built.
