file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_referrer_repairs.dir/bench_ablation_referrer_repairs.cpp.o"
  "CMakeFiles/bench_ablation_referrer_repairs.dir/bench_ablation_referrer_repairs.cpp.o.d"
  "bench_ablation_referrer_repairs"
  "bench_ablation_referrer_repairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_referrer_repairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
