# Empty dependencies file for adscope_pcap.
# This may be replaced when dependencies are built.
