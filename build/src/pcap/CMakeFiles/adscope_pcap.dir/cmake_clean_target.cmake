file(REMOVE_RECURSE
  "libadscope_pcap.a"
)
