file(REMOVE_RECURSE
  "CMakeFiles/adscope_pcap.dir/pcap.cc.o"
  "CMakeFiles/adscope_pcap.dir/pcap.cc.o.d"
  "libadscope_pcap.a"
  "libadscope_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adscope_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
