
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/browser_profile.cc" "src/sim/CMakeFiles/adscope_sim.dir/browser_profile.cc.o" "gcc" "src/sim/CMakeFiles/adscope_sim.dir/browser_profile.cc.o.d"
  "/root/repo/src/sim/crawl_sim.cc" "src/sim/CMakeFiles/adscope_sim.dir/crawl_sim.cc.o" "gcc" "src/sim/CMakeFiles/adscope_sim.dir/crawl_sim.cc.o.d"
  "/root/repo/src/sim/ecosystem.cc" "src/sim/CMakeFiles/adscope_sim.dir/ecosystem.cc.o" "gcc" "src/sim/CMakeFiles/adscope_sim.dir/ecosystem.cc.o.d"
  "/root/repo/src/sim/emitter.cc" "src/sim/CMakeFiles/adscope_sim.dir/emitter.cc.o" "gcc" "src/sim/CMakeFiles/adscope_sim.dir/emitter.cc.o.d"
  "/root/repo/src/sim/listgen.cc" "src/sim/CMakeFiles/adscope_sim.dir/listgen.cc.o" "gcc" "src/sim/CMakeFiles/adscope_sim.dir/listgen.cc.o.d"
  "/root/repo/src/sim/page_model.cc" "src/sim/CMakeFiles/adscope_sim.dir/page_model.cc.o" "gcc" "src/sim/CMakeFiles/adscope_sim.dir/page_model.cc.o.d"
  "/root/repo/src/sim/rbn_sim.cc" "src/sim/CMakeFiles/adscope_sim.dir/rbn_sim.cc.o" "gcc" "src/sim/CMakeFiles/adscope_sim.dir/rbn_sim.cc.o.d"
  "/root/repo/src/sim/ua_factory.cc" "src/sim/CMakeFiles/adscope_sim.dir/ua_factory.cc.o" "gcc" "src/sim/CMakeFiles/adscope_sim.dir/ua_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adblock/CMakeFiles/adscope_adblock.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/adscope_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ua/CMakeFiles/adscope_ua.dir/DependInfo.cmake"
  "/root/repo/build/src/netdb/CMakeFiles/adscope_netdb.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/adscope_http.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
