file(REMOVE_RECURSE
  "CMakeFiles/adscope_sim.dir/browser_profile.cc.o"
  "CMakeFiles/adscope_sim.dir/browser_profile.cc.o.d"
  "CMakeFiles/adscope_sim.dir/crawl_sim.cc.o"
  "CMakeFiles/adscope_sim.dir/crawl_sim.cc.o.d"
  "CMakeFiles/adscope_sim.dir/ecosystem.cc.o"
  "CMakeFiles/adscope_sim.dir/ecosystem.cc.o.d"
  "CMakeFiles/adscope_sim.dir/emitter.cc.o"
  "CMakeFiles/adscope_sim.dir/emitter.cc.o.d"
  "CMakeFiles/adscope_sim.dir/listgen.cc.o"
  "CMakeFiles/adscope_sim.dir/listgen.cc.o.d"
  "CMakeFiles/adscope_sim.dir/page_model.cc.o"
  "CMakeFiles/adscope_sim.dir/page_model.cc.o.d"
  "CMakeFiles/adscope_sim.dir/rbn_sim.cc.o"
  "CMakeFiles/adscope_sim.dir/rbn_sim.cc.o.d"
  "CMakeFiles/adscope_sim.dir/ua_factory.cc.o"
  "CMakeFiles/adscope_sim.dir/ua_factory.cc.o.d"
  "libadscope_sim.a"
  "libadscope_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adscope_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
