# Empty compiler generated dependencies file for adscope_sim.
# This may be replaced when dependencies are built.
