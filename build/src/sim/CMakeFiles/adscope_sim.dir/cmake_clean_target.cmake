file(REMOVE_RECURSE
  "libadscope_sim.a"
)
