# Empty dependencies file for adscope_http.
# This may be replaced when dependencies are built.
