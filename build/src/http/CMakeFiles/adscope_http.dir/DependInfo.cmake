
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http/headers.cc" "src/http/CMakeFiles/adscope_http.dir/headers.cc.o" "gcc" "src/http/CMakeFiles/adscope_http.dir/headers.cc.o.d"
  "/root/repo/src/http/mime.cc" "src/http/CMakeFiles/adscope_http.dir/mime.cc.o" "gcc" "src/http/CMakeFiles/adscope_http.dir/mime.cc.o.d"
  "/root/repo/src/http/public_suffix.cc" "src/http/CMakeFiles/adscope_http.dir/public_suffix.cc.o" "gcc" "src/http/CMakeFiles/adscope_http.dir/public_suffix.cc.o.d"
  "/root/repo/src/http/url.cc" "src/http/CMakeFiles/adscope_http.dir/url.cc.o" "gcc" "src/http/CMakeFiles/adscope_http.dir/url.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
