file(REMOVE_RECURSE
  "CMakeFiles/adscope_http.dir/headers.cc.o"
  "CMakeFiles/adscope_http.dir/headers.cc.o.d"
  "CMakeFiles/adscope_http.dir/mime.cc.o"
  "CMakeFiles/adscope_http.dir/mime.cc.o.d"
  "CMakeFiles/adscope_http.dir/public_suffix.cc.o"
  "CMakeFiles/adscope_http.dir/public_suffix.cc.o.d"
  "CMakeFiles/adscope_http.dir/url.cc.o"
  "CMakeFiles/adscope_http.dir/url.cc.o.d"
  "libadscope_http.a"
  "libadscope_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adscope_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
