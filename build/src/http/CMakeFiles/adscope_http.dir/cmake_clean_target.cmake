file(REMOVE_RECURSE
  "libadscope_http.a"
)
