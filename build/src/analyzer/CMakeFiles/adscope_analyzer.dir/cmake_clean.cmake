file(REMOVE_RECURSE
  "CMakeFiles/adscope_analyzer.dir/http_extractor.cc.o"
  "CMakeFiles/adscope_analyzer.dir/http_extractor.cc.o.d"
  "CMakeFiles/adscope_analyzer.dir/http_log.cc.o"
  "CMakeFiles/adscope_analyzer.dir/http_log.cc.o.d"
  "libadscope_analyzer.a"
  "libadscope_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adscope_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
