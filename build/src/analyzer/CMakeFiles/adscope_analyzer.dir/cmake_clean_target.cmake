file(REMOVE_RECURSE
  "libadscope_analyzer.a"
)
