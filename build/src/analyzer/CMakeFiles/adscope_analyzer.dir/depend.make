# Empty dependencies file for adscope_analyzer.
# This may be replaced when dependencies are built.
