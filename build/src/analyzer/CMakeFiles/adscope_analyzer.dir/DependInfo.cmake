
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analyzer/http_extractor.cc" "src/analyzer/CMakeFiles/adscope_analyzer.dir/http_extractor.cc.o" "gcc" "src/analyzer/CMakeFiles/adscope_analyzer.dir/http_extractor.cc.o.d"
  "/root/repo/src/analyzer/http_log.cc" "src/analyzer/CMakeFiles/adscope_analyzer.dir/http_log.cc.o" "gcc" "src/analyzer/CMakeFiles/adscope_analyzer.dir/http_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/adscope_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/adscope_http.dir/DependInfo.cmake"
  "/root/repo/build/src/netdb/CMakeFiles/adscope_netdb.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
