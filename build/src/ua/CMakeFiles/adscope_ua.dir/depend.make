# Empty dependencies file for adscope_ua.
# This may be replaced when dependencies are built.
