file(REMOVE_RECURSE
  "libadscope_ua.a"
)
