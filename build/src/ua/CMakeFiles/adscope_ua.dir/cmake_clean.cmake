file(REMOVE_RECURSE
  "CMakeFiles/adscope_ua.dir/user_agent.cc.o"
  "CMakeFiles/adscope_ua.dir/user_agent.cc.o.d"
  "libadscope_ua.a"
  "libadscope_ua.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adscope_ua.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
