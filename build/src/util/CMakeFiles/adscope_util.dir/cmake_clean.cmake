file(REMOVE_RECURSE
  "CMakeFiles/adscope_util.dir/format.cc.o"
  "CMakeFiles/adscope_util.dir/format.cc.o.d"
  "CMakeFiles/adscope_util.dir/strings.cc.o"
  "CMakeFiles/adscope_util.dir/strings.cc.o.d"
  "libadscope_util.a"
  "libadscope_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adscope_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
