# Empty compiler generated dependencies file for adscope_util.
# This may be replaced when dependencies are built.
