file(REMOVE_RECURSE
  "libadscope_util.a"
)
