file(REMOVE_RECURSE
  "CMakeFiles/adscope_core.dir/classifier.cc.o"
  "CMakeFiles/adscope_core.dir/classifier.cc.o.d"
  "CMakeFiles/adscope_core.dir/content_inference.cc.o"
  "CMakeFiles/adscope_core.dir/content_inference.cc.o.d"
  "CMakeFiles/adscope_core.dir/inference.cc.o"
  "CMakeFiles/adscope_core.dir/inference.cc.o.d"
  "CMakeFiles/adscope_core.dir/infra_analysis.cc.o"
  "CMakeFiles/adscope_core.dir/infra_analysis.cc.o.d"
  "CMakeFiles/adscope_core.dir/page_segmenter.cc.o"
  "CMakeFiles/adscope_core.dir/page_segmenter.cc.o.d"
  "CMakeFiles/adscope_core.dir/query_normalizer.cc.o"
  "CMakeFiles/adscope_core.dir/query_normalizer.cc.o.d"
  "CMakeFiles/adscope_core.dir/referrer_map.cc.o"
  "CMakeFiles/adscope_core.dir/referrer_map.cc.o.d"
  "CMakeFiles/adscope_core.dir/report.cc.o"
  "CMakeFiles/adscope_core.dir/report.cc.o.d"
  "CMakeFiles/adscope_core.dir/rtb_analysis.cc.o"
  "CMakeFiles/adscope_core.dir/rtb_analysis.cc.o.d"
  "CMakeFiles/adscope_core.dir/study.cc.o"
  "CMakeFiles/adscope_core.dir/study.cc.o.d"
  "CMakeFiles/adscope_core.dir/traffic_stats.cc.o"
  "CMakeFiles/adscope_core.dir/traffic_stats.cc.o.d"
  "CMakeFiles/adscope_core.dir/user_index.cc.o"
  "CMakeFiles/adscope_core.dir/user_index.cc.o.d"
  "CMakeFiles/adscope_core.dir/whitelist_analysis.cc.o"
  "CMakeFiles/adscope_core.dir/whitelist_analysis.cc.o.d"
  "libadscope_core.a"
  "libadscope_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adscope_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
