file(REMOVE_RECURSE
  "libadscope_core.a"
)
