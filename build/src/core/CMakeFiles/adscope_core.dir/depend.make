# Empty dependencies file for adscope_core.
# This may be replaced when dependencies are built.
