
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classifier.cc" "src/core/CMakeFiles/adscope_core.dir/classifier.cc.o" "gcc" "src/core/CMakeFiles/adscope_core.dir/classifier.cc.o.d"
  "/root/repo/src/core/content_inference.cc" "src/core/CMakeFiles/adscope_core.dir/content_inference.cc.o" "gcc" "src/core/CMakeFiles/adscope_core.dir/content_inference.cc.o.d"
  "/root/repo/src/core/inference.cc" "src/core/CMakeFiles/adscope_core.dir/inference.cc.o" "gcc" "src/core/CMakeFiles/adscope_core.dir/inference.cc.o.d"
  "/root/repo/src/core/infra_analysis.cc" "src/core/CMakeFiles/adscope_core.dir/infra_analysis.cc.o" "gcc" "src/core/CMakeFiles/adscope_core.dir/infra_analysis.cc.o.d"
  "/root/repo/src/core/page_segmenter.cc" "src/core/CMakeFiles/adscope_core.dir/page_segmenter.cc.o" "gcc" "src/core/CMakeFiles/adscope_core.dir/page_segmenter.cc.o.d"
  "/root/repo/src/core/query_normalizer.cc" "src/core/CMakeFiles/adscope_core.dir/query_normalizer.cc.o" "gcc" "src/core/CMakeFiles/adscope_core.dir/query_normalizer.cc.o.d"
  "/root/repo/src/core/referrer_map.cc" "src/core/CMakeFiles/adscope_core.dir/referrer_map.cc.o" "gcc" "src/core/CMakeFiles/adscope_core.dir/referrer_map.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/adscope_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/adscope_core.dir/report.cc.o.d"
  "/root/repo/src/core/rtb_analysis.cc" "src/core/CMakeFiles/adscope_core.dir/rtb_analysis.cc.o" "gcc" "src/core/CMakeFiles/adscope_core.dir/rtb_analysis.cc.o.d"
  "/root/repo/src/core/study.cc" "src/core/CMakeFiles/adscope_core.dir/study.cc.o" "gcc" "src/core/CMakeFiles/adscope_core.dir/study.cc.o.d"
  "/root/repo/src/core/traffic_stats.cc" "src/core/CMakeFiles/adscope_core.dir/traffic_stats.cc.o" "gcc" "src/core/CMakeFiles/adscope_core.dir/traffic_stats.cc.o.d"
  "/root/repo/src/core/user_index.cc" "src/core/CMakeFiles/adscope_core.dir/user_index.cc.o" "gcc" "src/core/CMakeFiles/adscope_core.dir/user_index.cc.o.d"
  "/root/repo/src/core/whitelist_analysis.cc" "src/core/CMakeFiles/adscope_core.dir/whitelist_analysis.cc.o" "gcc" "src/core/CMakeFiles/adscope_core.dir/whitelist_analysis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adblock/CMakeFiles/adscope_adblock.dir/DependInfo.cmake"
  "/root/repo/build/src/analyzer/CMakeFiles/adscope_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/adscope_html.dir/DependInfo.cmake"
  "/root/repo/build/src/ua/CMakeFiles/adscope_ua.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/adscope_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/netdb/CMakeFiles/adscope_netdb.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/adscope_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/adscope_http.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
