file(REMOVE_RECURSE
  "libadscope_trace.a"
)
