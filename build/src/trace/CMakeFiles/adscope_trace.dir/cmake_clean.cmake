file(REMOVE_RECURSE
  "CMakeFiles/adscope_trace.dir/io.cc.o"
  "CMakeFiles/adscope_trace.dir/io.cc.o.d"
  "CMakeFiles/adscope_trace.dir/reader.cc.o"
  "CMakeFiles/adscope_trace.dir/reader.cc.o.d"
  "CMakeFiles/adscope_trace.dir/writer.cc.o"
  "CMakeFiles/adscope_trace.dir/writer.cc.o.d"
  "libadscope_trace.a"
  "libadscope_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adscope_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
