
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/io.cc" "src/trace/CMakeFiles/adscope_trace.dir/io.cc.o" "gcc" "src/trace/CMakeFiles/adscope_trace.dir/io.cc.o.d"
  "/root/repo/src/trace/reader.cc" "src/trace/CMakeFiles/adscope_trace.dir/reader.cc.o" "gcc" "src/trace/CMakeFiles/adscope_trace.dir/reader.cc.o.d"
  "/root/repo/src/trace/writer.cc" "src/trace/CMakeFiles/adscope_trace.dir/writer.cc.o" "gcc" "src/trace/CMakeFiles/adscope_trace.dir/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netdb/CMakeFiles/adscope_netdb.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
