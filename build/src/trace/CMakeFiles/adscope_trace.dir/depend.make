# Empty dependencies file for adscope_trace.
# This may be replaced when dependencies are built.
