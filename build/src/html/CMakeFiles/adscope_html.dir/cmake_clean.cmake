file(REMOVE_RECURSE
  "CMakeFiles/adscope_html.dir/resource_extractor.cc.o"
  "CMakeFiles/adscope_html.dir/resource_extractor.cc.o.d"
  "CMakeFiles/adscope_html.dir/tokenizer.cc.o"
  "CMakeFiles/adscope_html.dir/tokenizer.cc.o.d"
  "libadscope_html.a"
  "libadscope_html.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adscope_html.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
