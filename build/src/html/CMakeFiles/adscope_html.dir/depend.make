# Empty dependencies file for adscope_html.
# This may be replaced when dependencies are built.
