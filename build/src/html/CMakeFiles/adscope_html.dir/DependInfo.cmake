
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/html/resource_extractor.cc" "src/html/CMakeFiles/adscope_html.dir/resource_extractor.cc.o" "gcc" "src/html/CMakeFiles/adscope_html.dir/resource_extractor.cc.o.d"
  "/root/repo/src/html/tokenizer.cc" "src/html/CMakeFiles/adscope_html.dir/tokenizer.cc.o" "gcc" "src/html/CMakeFiles/adscope_html.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/http/CMakeFiles/adscope_http.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
