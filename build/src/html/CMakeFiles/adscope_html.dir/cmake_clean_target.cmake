file(REMOVE_RECURSE
  "libadscope_html.a"
)
