# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("http")
subdirs("html")
subdirs("netdb")
subdirs("stats")
subdirs("adblock")
subdirs("ua")
subdirs("trace")
subdirs("pcap")
subdirs("analyzer")
subdirs("sim")
subdirs("core")
