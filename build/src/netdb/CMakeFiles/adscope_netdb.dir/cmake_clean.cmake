file(REMOVE_RECURSE
  "CMakeFiles/adscope_netdb.dir/asn_db.cc.o"
  "CMakeFiles/adscope_netdb.dir/asn_db.cc.o.d"
  "CMakeFiles/adscope_netdb.dir/ipv4.cc.o"
  "CMakeFiles/adscope_netdb.dir/ipv4.cc.o.d"
  "libadscope_netdb.a"
  "libadscope_netdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adscope_netdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
