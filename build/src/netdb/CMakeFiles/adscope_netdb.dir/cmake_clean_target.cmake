file(REMOVE_RECURSE
  "libadscope_netdb.a"
)
