# Empty dependencies file for adscope_netdb.
# This may be replaced when dependencies are built.
