
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netdb/asn_db.cc" "src/netdb/CMakeFiles/adscope_netdb.dir/asn_db.cc.o" "gcc" "src/netdb/CMakeFiles/adscope_netdb.dir/asn_db.cc.o.d"
  "/root/repo/src/netdb/ipv4.cc" "src/netdb/CMakeFiles/adscope_netdb.dir/ipv4.cc.o" "gcc" "src/netdb/CMakeFiles/adscope_netdb.dir/ipv4.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
