file(REMOVE_RECURSE
  "CMakeFiles/adscope_stats.dir/csv.cc.o"
  "CMakeFiles/adscope_stats.dir/csv.cc.o.d"
  "CMakeFiles/adscope_stats.dir/ecdf.cc.o"
  "CMakeFiles/adscope_stats.dir/ecdf.cc.o.d"
  "CMakeFiles/adscope_stats.dir/heatmap.cc.o"
  "CMakeFiles/adscope_stats.dir/heatmap.cc.o.d"
  "CMakeFiles/adscope_stats.dir/histogram.cc.o"
  "CMakeFiles/adscope_stats.dir/histogram.cc.o.d"
  "CMakeFiles/adscope_stats.dir/render.cc.o"
  "CMakeFiles/adscope_stats.dir/render.cc.o.d"
  "CMakeFiles/adscope_stats.dir/summary.cc.o"
  "CMakeFiles/adscope_stats.dir/summary.cc.o.d"
  "CMakeFiles/adscope_stats.dir/timeseries.cc.o"
  "CMakeFiles/adscope_stats.dir/timeseries.cc.o.d"
  "libadscope_stats.a"
  "libadscope_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adscope_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
