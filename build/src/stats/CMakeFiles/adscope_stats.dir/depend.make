# Empty dependencies file for adscope_stats.
# This may be replaced when dependencies are built.
