file(REMOVE_RECURSE
  "libadscope_stats.a"
)
