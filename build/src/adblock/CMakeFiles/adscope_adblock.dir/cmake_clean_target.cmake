file(REMOVE_RECURSE
  "libadscope_adblock.a"
)
