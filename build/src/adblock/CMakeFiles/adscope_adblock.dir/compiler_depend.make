# Empty compiler generated dependencies file for adscope_adblock.
# This may be replaced when dependencies are built.
