
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adblock/element_hiding.cc" "src/adblock/CMakeFiles/adscope_adblock.dir/element_hiding.cc.o" "gcc" "src/adblock/CMakeFiles/adscope_adblock.dir/element_hiding.cc.o.d"
  "/root/repo/src/adblock/engine.cc" "src/adblock/CMakeFiles/adscope_adblock.dir/engine.cc.o" "gcc" "src/adblock/CMakeFiles/adscope_adblock.dir/engine.cc.o.d"
  "/root/repo/src/adblock/filter.cc" "src/adblock/CMakeFiles/adscope_adblock.dir/filter.cc.o" "gcc" "src/adblock/CMakeFiles/adscope_adblock.dir/filter.cc.o.d"
  "/root/repo/src/adblock/filter_list.cc" "src/adblock/CMakeFiles/adscope_adblock.dir/filter_list.cc.o" "gcc" "src/adblock/CMakeFiles/adscope_adblock.dir/filter_list.cc.o.d"
  "/root/repo/src/adblock/subscription.cc" "src/adblock/CMakeFiles/adscope_adblock.dir/subscription.cc.o" "gcc" "src/adblock/CMakeFiles/adscope_adblock.dir/subscription.cc.o.d"
  "/root/repo/src/adblock/token_index.cc" "src/adblock/CMakeFiles/adscope_adblock.dir/token_index.cc.o" "gcc" "src/adblock/CMakeFiles/adscope_adblock.dir/token_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/http/CMakeFiles/adscope_http.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
