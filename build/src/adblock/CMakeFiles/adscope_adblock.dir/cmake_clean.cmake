file(REMOVE_RECURSE
  "CMakeFiles/adscope_adblock.dir/element_hiding.cc.o"
  "CMakeFiles/adscope_adblock.dir/element_hiding.cc.o.d"
  "CMakeFiles/adscope_adblock.dir/engine.cc.o"
  "CMakeFiles/adscope_adblock.dir/engine.cc.o.d"
  "CMakeFiles/adscope_adblock.dir/filter.cc.o"
  "CMakeFiles/adscope_adblock.dir/filter.cc.o.d"
  "CMakeFiles/adscope_adblock.dir/filter_list.cc.o"
  "CMakeFiles/adscope_adblock.dir/filter_list.cc.o.d"
  "CMakeFiles/adscope_adblock.dir/subscription.cc.o"
  "CMakeFiles/adscope_adblock.dir/subscription.cc.o.d"
  "CMakeFiles/adscope_adblock.dir/token_index.cc.o"
  "CMakeFiles/adscope_adblock.dir/token_index.cc.o.d"
  "libadscope_adblock.a"
  "libadscope_adblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adscope_adblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
