# Empty dependencies file for test_query_normalizer.
# This may be replaced when dependencies are built.
