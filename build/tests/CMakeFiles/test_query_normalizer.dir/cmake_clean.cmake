file(REMOVE_RECURSE
  "CMakeFiles/test_query_normalizer.dir/test_query_normalizer.cpp.o"
  "CMakeFiles/test_query_normalizer.dir/test_query_normalizer.cpp.o.d"
  "test_query_normalizer"
  "test_query_normalizer.pdb"
  "test_query_normalizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_query_normalizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
