file(REMOVE_RECURSE
  "CMakeFiles/test_ecosystem.dir/test_ecosystem.cpp.o"
  "CMakeFiles/test_ecosystem.dir/test_ecosystem.cpp.o.d"
  "test_ecosystem"
  "test_ecosystem.pdb"
  "test_ecosystem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecosystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
