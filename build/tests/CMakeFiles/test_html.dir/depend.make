# Empty dependencies file for test_html.
# This may be replaced when dependencies are built.
