file(REMOVE_RECURSE
  "CMakeFiles/test_html.dir/test_html.cpp.o"
  "CMakeFiles/test_html.dir/test_html.cpp.o.d"
  "test_html"
  "test_html.pdb"
  "test_html[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_html.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
