# Empty compiler generated dependencies file for test_payload_mode.
# This may be replaced when dependencies are built.
