file(REMOVE_RECURSE
  "CMakeFiles/test_payload_mode.dir/test_payload_mode.cpp.o"
  "CMakeFiles/test_payload_mode.dir/test_payload_mode.cpp.o.d"
  "test_payload_mode"
  "test_payload_mode.pdb"
  "test_payload_mode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_payload_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
