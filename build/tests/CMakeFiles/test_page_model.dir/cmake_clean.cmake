file(REMOVE_RECURSE
  "CMakeFiles/test_page_model.dir/test_page_model.cpp.o"
  "CMakeFiles/test_page_model.dir/test_page_model.cpp.o.d"
  "test_page_model"
  "test_page_model.pdb"
  "test_page_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_page_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
