file(REMOVE_RECURSE
  "CMakeFiles/test_ua.dir/test_ua.cpp.o"
  "CMakeFiles/test_ua.dir/test_ua.cpp.o.d"
  "test_ua"
  "test_ua.pdb"
  "test_ua[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ua.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
