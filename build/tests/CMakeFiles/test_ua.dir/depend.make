# Empty dependencies file for test_ua.
# This may be replaced when dependencies are built.
