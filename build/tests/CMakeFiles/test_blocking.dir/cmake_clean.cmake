file(REMOVE_RECURSE
  "CMakeFiles/test_blocking.dir/test_blocking.cpp.o"
  "CMakeFiles/test_blocking.dir/test_blocking.cpp.o.d"
  "test_blocking"
  "test_blocking.pdb"
  "test_blocking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
