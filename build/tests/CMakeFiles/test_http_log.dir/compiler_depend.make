# Empty compiler generated dependencies file for test_http_log.
# This may be replaced when dependencies are built.
