file(REMOVE_RECURSE
  "CMakeFiles/test_http_log.dir/test_http_log.cpp.o"
  "CMakeFiles/test_http_log.dir/test_http_log.cpp.o.d"
  "test_http_log"
  "test_http_log.pdb"
  "test_http_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_http_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
