# Empty compiler generated dependencies file for test_netdb.
# This may be replaced when dependencies are built.
