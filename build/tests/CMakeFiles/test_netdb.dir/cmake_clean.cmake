file(REMOVE_RECURSE
  "CMakeFiles/test_netdb.dir/test_netdb.cpp.o"
  "CMakeFiles/test_netdb.dir/test_netdb.cpp.o.d"
  "test_netdb"
  "test_netdb.pdb"
  "test_netdb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
