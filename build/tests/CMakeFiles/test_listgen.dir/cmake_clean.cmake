file(REMOVE_RECURSE
  "CMakeFiles/test_listgen.dir/test_listgen.cpp.o"
  "CMakeFiles/test_listgen.dir/test_listgen.cpp.o.d"
  "test_listgen"
  "test_listgen.pdb"
  "test_listgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_listgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
