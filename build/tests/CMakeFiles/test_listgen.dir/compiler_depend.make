# Empty compiler generated dependencies file for test_listgen.
# This may be replaced when dependencies are built.
