# Empty dependencies file for test_filter_list.
# This may be replaced when dependencies are built.
