file(REMOVE_RECURSE
  "CMakeFiles/test_filter_list.dir/test_filter_list.cpp.o"
  "CMakeFiles/test_filter_list.dir/test_filter_list.cpp.o.d"
  "test_filter_list"
  "test_filter_list.pdb"
  "test_filter_list[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_filter_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
