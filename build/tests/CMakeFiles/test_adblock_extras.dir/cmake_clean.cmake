file(REMOVE_RECURSE
  "CMakeFiles/test_adblock_extras.dir/test_adblock_extras.cpp.o"
  "CMakeFiles/test_adblock_extras.dir/test_adblock_extras.cpp.o.d"
  "test_adblock_extras"
  "test_adblock_extras.pdb"
  "test_adblock_extras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adblock_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
