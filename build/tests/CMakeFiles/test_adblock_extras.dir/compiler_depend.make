# Empty compiler generated dependencies file for test_adblock_extras.
# This may be replaced when dependencies are built.
