# Empty dependencies file for test_referrer.
# This may be replaced when dependencies are built.
