file(REMOVE_RECURSE
  "CMakeFiles/test_referrer.dir/test_referrer.cpp.o"
  "CMakeFiles/test_referrer.dir/test_referrer.cpp.o.d"
  "test_referrer"
  "test_referrer.pdb"
  "test_referrer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_referrer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
