file(REMOVE_RECURSE
  "CMakeFiles/test_page_segmenter.dir/test_page_segmenter.cpp.o"
  "CMakeFiles/test_page_segmenter.dir/test_page_segmenter.cpp.o.d"
  "test_page_segmenter"
  "test_page_segmenter.pdb"
  "test_page_segmenter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_page_segmenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
