# Empty dependencies file for test_page_segmenter.
# This may be replaced when dependencies are built.
