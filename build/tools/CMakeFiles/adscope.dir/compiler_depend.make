# Empty compiler generated dependencies file for adscope.
# This may be replaced when dependencies are built.
