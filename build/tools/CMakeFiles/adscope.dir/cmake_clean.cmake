file(REMOVE_RECURSE
  "CMakeFiles/adscope.dir/adscope_cli.cc.o"
  "CMakeFiles/adscope.dir/adscope_cli.cc.o.d"
  "adscope"
  "adscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adscope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
