# Empty compiler generated dependencies file for classify_trace.
# This may be replaced when dependencies are built.
