file(REMOVE_RECURSE
  "CMakeFiles/classify_trace.dir/classify_trace.cpp.o"
  "CMakeFiles/classify_trace.dir/classify_trace.cpp.o.d"
  "classify_trace"
  "classify_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
