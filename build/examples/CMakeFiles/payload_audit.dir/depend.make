# Empty dependencies file for payload_audit.
# This may be replaced when dependencies are built.
