file(REMOVE_RECURSE
  "CMakeFiles/payload_audit.dir/payload_audit.cpp.o"
  "CMakeFiles/payload_audit.dir/payload_audit.cpp.o.d"
  "payload_audit"
  "payload_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payload_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
