file(REMOVE_RECURSE
  "CMakeFiles/adblock_detector.dir/adblock_detector.cpp.o"
  "CMakeFiles/adblock_detector.dir/adblock_detector.cpp.o.d"
  "adblock_detector"
  "adblock_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adblock_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
