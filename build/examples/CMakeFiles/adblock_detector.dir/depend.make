# Empty dependencies file for adblock_detector.
# This may be replaced when dependencies are built.
