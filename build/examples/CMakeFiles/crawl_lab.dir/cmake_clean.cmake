file(REMOVE_RECURSE
  "CMakeFiles/crawl_lab.dir/crawl_lab.cpp.o"
  "CMakeFiles/crawl_lab.dir/crawl_lab.cpp.o.d"
  "crawl_lab"
  "crawl_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crawl_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
