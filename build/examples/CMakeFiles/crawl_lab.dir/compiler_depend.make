# Empty compiler generated dependencies file for crawl_lab.
# This may be replaced when dependencies are built.
